"""Cross-module rules: backend parity and registry/signature sync.

These are project-scope rules: they anchor on specific modules
(``repro.backends.*``, ``repro.api.registry``, ``repro.core.kernels``)
and cross-reference their ASTs.  When the corpus does not contain the
anchor modules (e.g. an ad-hoc single-file lint), they report nothing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.corpus import Corpus, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    Rule,
    dotted_name,
    has_kwargs,
    register_rule,
)

_REFERENCE_BACKEND_MODULE = "repro.backends.numpy_backend"
_COMPILED_BACKEND_MODULE = "repro.backends.numba_backend"
_KERNELS_MODULE = "repro.core.kernels"
_REGISTRY_MODULE = "repro.api.registry"


def _signature_tuple(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[str, ...], tuple[str, ...], bool, bool]:
    """(positional names, kw-only names, *args?, **kwargs?) minus self."""
    args = fn.args
    positional = [arg.arg for arg in (*args.posonlyargs, *args.args)]
    if positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    kwonly = [arg.arg for arg in args.kwonlyargs]
    return (
        tuple(positional),
        tuple(kwonly),
        args.vararg is not None,
        args.kwarg is not None,
    )


def _backend_classes(file: SourceFile) -> list[ast.ClassDef]:
    assert file.tree is not None
    found = []
    for node in file.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {dotted_name(base) for base in node.bases}
        if any(
            base is not None and base.split(".")[-1] == "KernelBackend"
            for base in bases
        ):
            found.append(node)
    return found


def _public_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_")
    }


@register_rule
class BackendParityRule(Rule):
    id = "backend-parity"
    summary = (
        "every kernel of the numpy reference backend exists on the "
        "numba backend with a matching signature, and every public "
        "kernel entry point threads backend="
    )
    invariant = (
        "Backends are interchangeable: a compiled backend implements "
        "exactly the reference kernel set with identical signatures, "
        "and every public kernel in repro.core.kernels dispatches "
        "through an optional backend= parameter."
    )
    scope = "project"

    def check_project(self, corpus: Corpus) -> Iterable[Finding]:
        yield from self._check_class_parity(corpus)
        yield from self._check_kernel_entry_points(corpus)

    def _check_class_parity(self, corpus: Corpus) -> Iterable[Finding]:
        reference = corpus.by_module(_REFERENCE_BACKEND_MODULE)
        compiled = corpus.by_module(_COMPILED_BACKEND_MODULE)
        if reference is None or compiled is None:
            return
        if reference.tree is None or compiled.tree is None:
            return
        ref_classes = _backend_classes(reference)
        comp_classes = _backend_classes(compiled)
        if not ref_classes or not comp_classes:
            return
        ref_cls, comp_cls = ref_classes[0], comp_classes[0]
        ref_methods = _public_methods(ref_cls)
        comp_methods = _public_methods(comp_cls)
        for name, ref_fn in sorted(ref_methods.items()):
            comp_fn = comp_methods.get(name)
            if comp_fn is None:
                yield self.finding(
                    compiled,
                    comp_cls,
                    f"backend {comp_cls.name} is missing kernel "
                    f"{name}() defined by the reference backend "
                    f"{ref_cls.name}",
                )
                continue
            if _signature_tuple(ref_fn) != _signature_tuple(comp_fn):
                yield self.finding(
                    compiled,
                    comp_fn,
                    f"kernel {comp_cls.name}.{name}() signature "
                    f"diverges from the reference "
                    f"{ref_cls.name}.{name}(): backends must be "
                    f"drop-in interchangeable",
                )
        for name in sorted(set(comp_methods) - set(ref_methods)):
            yield self.finding(
                compiled,
                comp_methods[name],
                f"backend {comp_cls.name} defines public kernel "
                f"{name}() absent from the reference {ref_cls.name}: "
                f"extend the reference (and the KernelBackend "
                f"contract) first",
            )

    def _check_kernel_entry_points(self, corpus: Corpus) -> Iterable[Finding]:
        kernels = corpus.by_module(_KERNELS_MODULE)
        if kernels is None or kernels.tree is None:
            return
        exported = _module_all(kernels.tree)
        for node in kernels.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if exported is not None and node.name not in exported:
                continue
            positional, kwonly, _, _ = _signature_tuple(node)
            if not positional or positional[0] != "state":
                # Helpers like frontier_edge_targets operate below the
                # backend dispatch layer; only state-first kernels are
                # public dispatch points.
                continue
            if "backend" not in (*positional, *kwonly):
                yield self.finding(
                    kernels,
                    node,
                    f"public kernel {node.name}() does not accept "
                    f"backend=; every kernel entry point must thread "
                    f"the pluggable-backend dispatch",
                )


def _module_all(tree: ast.Module) -> set[str] | None:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "__all__" not in targets:
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            return {
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return None


# ---------------------------------------------------------------------------
# registry-signature-sync
# ---------------------------------------------------------------------------

#: Parameters the SolverSpec machinery consumes before the wrapped
#: function is called.  ``seed`` is popped by SolverSpec.solve and
#: re-injected as a derived ``rng`` Generator, so declaring it is valid
#: exactly when the solver accepts ``rng``.
_MACHINERY_PARAMS = frozenset({"seed"})


@register_rule
class RegistrySignatureSyncRule(Rule):
    id = "registry-signature-sync"
    summary = (
        "every SolverSpec's declared params are accepted by the "
        "wrapped solver function's actual signature"
    )
    invariant = (
        "The registry's unified parameter schema never drifts from the "
        "concrete solver signatures: a declared ParamSpec the function "
        "cannot accept would turn valid requests into TypeErrors deep "
        "in a worker batch."
    )
    scope = "project"

    def check_project(self, corpus: Corpus) -> Iterable[Finding]:
        registry = corpus.by_module(_REGISTRY_MODULE)
        if registry is None or registry.tree is None:
            return
        tree = registry.tree
        imports = _import_map(tree)
        local_defs = _collect_defs(tree)
        constants = _tuple_constants(tree)
        for call in ast.walk(tree):
            if not isinstance(call, ast.Call):
                continue
            if dotted_name(call.func) != "register_solver":
                continue
            spec_call = call.args[0] if call.args else None
            if not isinstance(spec_call, ast.Call):
                continue
            if dotted_name(spec_call.func) != "SolverSpec":
                continue
            yield from self._check_spec(
                registry, corpus, spec_call, imports, local_defs, constants
            )

    def _check_spec(
        self,
        registry: SourceFile,
        corpus: Corpus,
        spec_call: ast.Call,
        imports: dict[str, str],
        local_defs: dict[str, ast.FunctionDef],
        constants: dict[str, tuple[str, ...]],
    ) -> Iterable[Finding]:
        keywords = {kw.arg: kw.value for kw in spec_call.keywords if kw.arg}
        name_node = keywords.get("name")
        method = (
            name_node.value
            if isinstance(name_node, ast.Constant)
            else "<unknown>"
        )
        declared = _resolve_params(keywords.get("params"), constants)
        fn_node = keywords.get("fn")
        if declared is None or fn_node is None:
            return
        resolved = self._resolve_fn(
            fn_node, corpus, imports, local_defs
        )
        if resolved is None:
            return
        accepted, accepts_anything, target_name = resolved
        if accepts_anything:
            return
        for param in declared:
            if param in _MACHINERY_PARAMS:
                if "rng" in accepted:
                    continue
                yield self.finding(
                    registry,
                    spec_call,
                    f"solver {method!r} declares 'seed' but "
                    f"{target_name}() accepts no 'rng' parameter to "
                    f"receive the derived generator",
                )
                continue
            if param not in accepted:
                yield self.finding(
                    registry,
                    spec_call,
                    f"solver {method!r} declares parameter {param!r} "
                    f"that {target_name}() does not accept; sync the "
                    f"SolverSpec params with the function signature",
                )

    def _resolve_fn(
        self,
        fn_node: ast.expr,
        corpus: Corpus,
        imports: dict[str, str],
        local_defs: dict[str, ast.FunctionDef],
    ) -> tuple[set[str], bool, str] | None:
        """(accepted params, accepts-anything, display name) for ``fn``."""
        if isinstance(fn_node, ast.Name):
            fn = self._lookup(fn_node.id, corpus, imports, local_defs)
            if fn is None:
                return None
            accepted, anything = _accepted_params(fn)
            return accepted, anything, fn_node.id
        if isinstance(fn_node, ast.Call) and fn_node.args:
            # Wrapper pattern: fn=_wrap(underlying, ...).  The wrapper's
            # returned adapter contributes its own named params and
            # forwards **kwargs to the underlying solver.
            inner = fn_node.args[0]
            if not isinstance(inner, ast.Name):
                return None
            underlying = self._lookup(
                inner.id, corpus, imports, local_defs
            )
            if underlying is None:
                return None
            accepted, anything = _accepted_params(underlying)
            wrapper_name = (
                fn_node.func.id
                if isinstance(fn_node.func, ast.Name)
                else None
            )
            if wrapper_name and wrapper_name in local_defs:
                accepted |= _adapter_extra_params(local_defs[wrapper_name])
            return accepted, anything, inner.id
        return None

    @staticmethod
    def _lookup(
        name: str,
        corpus: Corpus,
        imports: dict[str, str],
        local_defs: dict[str, ast.FunctionDef],
    ) -> ast.FunctionDef | None:
        if name in local_defs:
            return local_defs[name]
        module_name = imports.get(name)
        if module_name is None:
            return None
        module = corpus.by_module(module_name)
        if module is None or module.tree is None:
            return None
        return _collect_defs(module.tree).get(name)


def _import_map(tree: ast.Module) -> dict[str, str]:
    """local name -> source module, for ``from X import a, b as c``."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = node.module
    return imports


def _collect_defs(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _tuple_constants(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b")`` string-tuple assignments."""
    constants: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Tuple):
            continue
        elements: list[str] = []
        resolvable = True
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                elements.append(elt.value)
            elif isinstance(elt, ast.Starred) and isinstance(
                elt.value, ast.Name
            ):
                expansion = constants.get(elt.value.id)
                if expansion is None:
                    resolvable = False
                    break
                elements.extend(expansion)
            else:
                resolvable = False
                break
        if resolvable:
            constants[target.id] = tuple(elements)
    return constants


def _resolve_params(
    node: ast.expr | None, constants: dict[str, tuple[str, ...]]
) -> tuple[str, ...] | None:
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if not isinstance(node, ast.Tuple):
        return None
    elements: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            elements.append(elt.value)
        elif isinstance(elt, ast.Starred) and isinstance(elt.value, ast.Name):
            expansion = constants.get(elt.value.id)
            if expansion is None:
                return None
            elements.extend(expansion)
        else:
            return None
    return tuple(elements)


def _accepted_params(fn: ast.FunctionDef) -> tuple[set[str], bool]:
    """Named params after (graph, source), plus an accepts-** flag."""
    args = fn.args
    positional = [arg.arg for arg in (*args.posonlyargs, *args.args)]
    accepted = set(positional[2:]) | {arg.arg for arg in args.kwonlyargs}
    return accepted, has_kwargs(fn)


def _adapter_extra_params(wrapper: ast.FunctionDef) -> set[str]:
    """Named params the wrapper's nested adapter def(s) add."""
    extra: set[str] = set()
    for node in ast.walk(wrapper):
        if node is wrapper or not isinstance(node, ast.FunctionDef):
            continue
        args = node.args
        positional = [arg.arg for arg in (*args.posonlyargs, *args.args)]
        extra |= set(positional[2:])
        extra |= {arg.arg for arg in args.kwonlyargs}
    return extra
