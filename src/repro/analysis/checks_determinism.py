"""Determinism rules: RNG discipline, bitwise-safe gathers, scratch use.

These rules guard the reproducibility contracts the solver stack is
built on: answers are a pure function of ``(seed, source)``, block rows
are bitwise-identical to independent solves, and hot-path kernels do
not churn the allocator.  See CONTRIBUTING.md for the invariant table.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.corpus import SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    Rule,
    dotted_name,
    register_rule,
    walk_functions,
)

#: The module that owns seed -> stream derivation (`per_source_rng`);
#: its intentionally-unseeded fallback for unseeded stochastic queries
#: is the one sanctioned ambient-entropy site.
SANCTIONED_RNG_MODULE = "repro.api.registry"

#: Legacy global-state numpy RNG entry points.  Any of these makes the
#: answer depend on process-wide hidden state, breaking the
#: (seed, source) purity the serving layer's coalescing relies on.
_LEGACY_NP_RANDOM = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "get_state",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_normal",
        "uniform",
        "RandomState",
    }
)

#: stdlib ``random`` module functions (all draw from one global state).
_STDLIB_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class RngDisciplineRule(Rule):
    id = "rng-discipline"
    summary = (
        "no ambient RNG: legacy np.random.* / stdlib random.* / unseeded "
        "default_rng() outside the sanctioned derivation module"
    )
    invariant = (
        "Every answer is a pure function of (seed, source): stochastic "
        "solvers draw from an explicit numpy Generator derived via "
        "per_source_rng, never from process-global or unseeded entropy."
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if file.module == SANCTIONED_RNG_MODULE:
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            finding = self._classify(file, node, name)
            if finding is not None:
                yield finding

    def _classify(
        self, file: SourceFile, node: ast.Call, name: str
    ) -> Finding | None:
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            fn = parts[2]
            if fn in _LEGACY_NP_RANDOM:
                return self.finding(
                    file,
                    node,
                    f"legacy global-state RNG call {name}(); derive an "
                    f"explicit Generator via per_source_rng / "
                    f"default_rng(seed) instead",
                )
            if fn == "default_rng" and not node.args and not node.keywords:
                return self.finding(
                    file,
                    node,
                    "unseeded np.random.default_rng(): ambient entropy "
                    "breaks (seed, source) reproducibility; pass an "
                    "explicit seed or accept an rng parameter",
                )
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_RANDOM
        ):
            return self.finding(
                file,
                node,
                f"stdlib global-state RNG call {name}(); use an explicit "
                f"numpy Generator instead",
            )
        return None


@register_rule
class ColumnFancyGatherRule(Rule):
    id = "no-column-fancy-gather"
    summary = (
        "no arr[:, idx] column fancy-gathers in kernel code; use "
        "np.take(arr, idx, axis=1)"
    )
    invariant = (
        "Block rows are bitwise-identical to independent solves only "
        "when row-wise reductions run over C-contiguous gathers: a "
        "[:, idx] fancy index yields a transposed buffer whose strided "
        "rows reduce sequentially instead of pairwise."
    )

    _PACKAGES = ("repro.core", "repro.backends")

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not file.in_package(*self._PACKAGES):
            return
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Subscript):
                continue
            index = node.slice
            if not isinstance(index, ast.Tuple) or len(index.elts) != 2:
                continue
            first, second = index.elts
            if not isinstance(first, ast.Slice):
                continue
            if first.lower is not None or first.upper is not None:
                continue
            if isinstance(second, (ast.Slice, ast.Constant)):
                # arr[:, 3] picks one column and arr[:, a:b] is a view;
                # neither materialises a strided fancy-gather result.
                continue
            yield self.finding(
                file,
                node,
                "[:, idx] column fancy-gather returns a transposed "
                "(F-ordered) buffer whose row reductions are not "
                "pairwise; use np.take(arr, idx, axis=1) to keep block "
                "rows bitwise-identical to independent solves",
            )


@register_rule
class MutableDefaultRule(Rule):
    id = "no-mutable-default"
    summary = (
        "no mutable or call-at-definition-time (ambient time/entropy) "
        "default argument values"
    )
    invariant = (
        "Solver signatures are pure: a mutable default is shared state "
        "across calls, and a time/RNG call in a default is evaluated "
        "once at import, silently freezing an 'ambient' value."
    )

    _AMBIENT_CALLS = frozenset(
        {
            "time.time",
            "time.monotonic",
            "time.perf_counter",
            "time.process_time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
            "date.today",
        }
    )

    _MUTABLE_FACTORIES = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "np.array",
            "np.empty",
            "np.zeros",
            "np.ones",
            "numpy.array",
            "numpy.empty",
            "numpy.zeros",
            "numpy.ones",
        }
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        assert file.tree is not None
        for fn in walk_functions(file.tree):
            defaults = [*fn.args.defaults, *fn.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                yield from self._check_default(file, fn, default)

    def _check_default(
        self,
        file: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        default: ast.expr,
    ) -> Iterator[Finding]:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            yield self.finding(
                file,
                default,
                f"mutable default in {fn.name}(): the object is shared "
                f"across every call; default to None and construct "
                f"inside the body",
            )
            return
        if isinstance(default, ast.Call):
            name = dotted_name(default.func) or "<call>"
            if name in self._AMBIENT_CALLS:
                yield self.finding(
                    file,
                    default,
                    f"ambient-time default {name}() in {fn.name}(): "
                    f"evaluated once at definition time, not per call; "
                    f"default to None and read the clock in the body",
                )
            elif name in self._MUTABLE_FACTORIES:
                yield self.finding(
                    file,
                    default,
                    f"mutable default {name}(...) in {fn.name}(): the "
                    f"object is shared across every call; default to "
                    f"None and construct inside the body",
                )


@register_rule
class WorkspaceDisciplineRule(Rule):
    id = "workspace-discipline"
    summary = (
        "kernel hot paths allocate scratch via Workspace, not raw "
        "np.empty/np.zeros"
    )
    invariant = (
        "Kernels that accept a workspace= parameter serve every "
        "temporary from it, so allocation counts stay flat across a "
        "solve; raw allocations are confined to the sanctioned "
        "workspace-is-None fallback branch or a _scratch helper."
    )

    _ALLOCATORS = frozenset(
        {
            "np.empty",
            "np.zeros",
            "np.ones",
            "np.full",
            "numpy.empty",
            "numpy.zeros",
            "numpy.ones",
            "numpy.full",
        }
    )

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if not (
            file.module == "repro.core.kernels"
            or file.in_package("repro.backends")
        ):
            return
        assert file.tree is not None
        for fn in walk_functions(file.tree):
            if fn.name.startswith("_scratch"):
                # The sanctioned pooled-or-fresh helper is exactly the
                # place the raw fallback allocation lives.
                continue
            arg_names = {
                arg.arg
                for arg in (
                    *fn.args.posonlyargs,
                    *fn.args.args,
                    *fn.args.kwonlyargs,
                )
            }
            if "workspace" not in arg_names:
                continue
            exempt = self._fallback_nodes(fn)
            for node in ast.walk(fn):
                if id(node) in exempt or not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in self._ALLOCATORS:
                    yield self.finding(
                        file,
                        node,
                        f"raw {name}(...) in kernel {fn.name}() that "
                        f"accepts workspace=; request a pooled buffer "
                        f"(workspace.buffer / _scratch) so hot-loop "
                        f"allocation counts stay flat",
                    )

    @staticmethod
    def _fallback_nodes(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[int]:
        """ids of nodes inside sanctioned ``workspace is None`` branches."""
        exempt: set[int] = set()

        def test_is(node: ast.expr, negated: bool) -> bool:
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                return False
            left, (op,), (right,) = node.left, node.ops, node.comparators
            names = {
                n.id for n in (left, right) if isinstance(n, ast.Name)
            }
            if "workspace" not in names:
                return False
            is_none = any(
                isinstance(n, ast.Constant) and n.value is None
                for n in (left, right)
            )
            if not is_none:
                return False
            if negated:
                return isinstance(op, ast.IsNot)
            return isinstance(op, ast.Is)

        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            if test_is(node.test, negated=False):  # if workspace is None
                branch: list[ast.stmt] = node.body
            elif test_is(node.test, negated=True):  # if workspace is not None
                branch = node.orelse
            else:
                continue
            for stmt in branch:
                for sub in ast.walk(stmt):
                    exempt.add(id(sub))
        return exempt
