"""Inline suppression comments: ``# repro: allow[rule-id] -- reason``.

A finding is suppressed when the line it is anchored to carries an
allow comment naming its rule **and** giving a reason.  The reason is
mandatory: a bare ``# repro: allow[rule-id]`` suppresses nothing and is
itself reported by the ``suppression-hygiene`` meta rule, so every
exemption in the tree documents *why* the invariant does not apply.

Two forms are recognised::

    x = risky()  # repro: allow[rule-id] -- why this is safe here
    # repro: allow-file[rule-id] -- why this whole file is exempt

``allow-file`` must appear before the first statement (the module
docstring region) and exempts the whole file from the named rules.
Multiple rule ids separate with commas: ``allow[rule-a, rule-b]``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "SuppressionSet", "parse_suppressions"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow(?P<filewide>-file)?"
    r"\[(?P<rules>[^\]]*)\]"
    r"(?:\s*(?:--|:)\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed allow comment."""

    rule: str
    line: int
    reason: str | None
    file_wide: bool


@dataclass
class SuppressionSet:
    """Every allow comment of one file, indexed for fast lookup."""

    suppressions: list[Suppression] = field(default_factory=list)

    def add(self, suppression: Suppression) -> None:
        self.suppressions.append(suppression)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` at ``line`` is covered by a reasoned allow."""
        for suppression in self.suppressions:
            if suppression.rule != rule or not suppression.reason:
                continue
            if suppression.file_wide or suppression.line == line:
                return True
        return False

    @property
    def unreasoned(self) -> list[Suppression]:
        """Allow comments missing the mandatory reason (not honoured)."""
        return [s for s in self.suppressions if not s.reason]


def parse_suppressions(text: str) -> SuppressionSet:
    """Extract every allow comment from ``text`` (tokenize-based).

    Comments are read with :mod:`tokenize` so string literals that
    merely *contain* ``# repro: allow`` never register.  Files with
    tokenisation errors (the analyzer reports the parse error
    separately) yield an empty set.
    """
    result = SuppressionSet()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return result
    for line, comment in comments:
        match = _ALLOW_RE.match(comment.strip())
        if match is None:
            continue
        reason = match.group("reason")
        file_wide = match.group("filewide") is not None
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                result.add(Suppression(rule, line, reason, file_wide))
    return result
