"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class.  Subclasses
are grouped by subsystem: graph construction and I/O, algorithm parameter
validation, and index management.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge list, file, or array describing a graph is malformed."""


class GraphConstructionError(ReproError):
    """A graph could not be assembled from otherwise well-formed input."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented domain.

    Inherits from :class:`ValueError` so generic callers that catch
    ``ValueError`` keep working.
    """


class NodeNotFoundError(ReproError, KeyError):
    """A node id is outside ``[0, n)`` for the graph in question."""


class IndexBuildError(ReproError):
    """A precomputed index (walk index or BePI index) failed to build."""


class IndexMismatchError(ReproError):
    """A precomputed index does not match the graph or query parameters."""


class ConvergenceError(ReproError):
    """An iterative solver exhausted its iteration budget before converging."""


class DeadlineExceeded(ReproError, TimeoutError):
    """A request's deadline passed before an answer could be produced.

    Raised by the serving layer: at submit time when the budget is
    already spent, at dispatch time when a queued request expired
    inside the micro-batch window (it is failed fast instead of
    occupying a batch slot), and by the async front door when the
    solve outlives the remaining budget.  Inherits from
    :class:`TimeoutError` so generic timeout handlers keep working.
    """


class ServerOverloadedError(ReproError):
    """Admission control shed a request to protect the SLO.

    Raised by :class:`~repro.serving.frontdoor.AsyncFrontDoor` when
    predicted tail latency (or the in-flight bound) says admitting the
    request would blow the service-level objective and no degraded
    tier can absorb it.  The request was never enqueued; retrying
    later is safe.
    """


class WorkerUnavailableError(ReproError):
    """No shard could serve a request within its retry budget.

    Raised by :class:`~repro.serving.sharded.ShardedDispatcher` when a
    read has exhausted its deadline-aware retry budget — the routed
    worker kept dying, timing out, or sitting behind an open circuit
    breaker — or when every worker is gone and none will be respawned.
    Retrying is safe (answers are pure functions of ``(seed, source)``)
    but should go through fresh admission, not the failed future.
    """


class WalCorruptionError(ReproError):
    """A write-ahead log contains an unrecoverable mid-log corruption.

    Raised by :class:`~repro.durability.wal.WriteAheadLog` when a fully
    present frame fails its CRC32C check, when a non-final segment ends
    in a partial frame, or when record versions are not contiguous.  A
    *torn tail* — a partial final frame at the end of the last segment,
    the signature of a crash mid-append — is **not** this error: it is
    silently truncated on open, because fsync-before-ack means the torn
    record was never acknowledged.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated.

    Raised by :class:`~repro.durability.checkpoint.CheckpointStore`
    when a checkpoint directory is missing artefacts, fails checksum
    or fingerprint validation, or its manifest is malformed.
    """


class RecoveryError(ReproError):
    """Cold-restart recovery could not reach a consistent state.

    Raised by :class:`~repro.durability.manager.DurabilityManager` when
    the checkpoint + WAL-suffix replay does not reproduce the logged
    head version, when a replayed record's version range does not abut
    the recovered graph's version, or when durable state exists but is
    incompatible with the requested graph.
    """


class UnknownMethodError(ReproError, KeyError):
    """A method name does not resolve to any registered solver.

    Raised by the solver registry (:mod:`repro.api.registry`); the
    message lists every valid canonical name and alias.  Inherits from
    :class:`KeyError` so generic lookup callers keep working.
    """

    def __init__(self, name: str, valid: list[str]) -> None:
        self.name = name
        self.valid = list(valid)
        super().__init__(
            f"unknown method {name!r}; valid methods: {', '.join(self.valid)}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]

    def __reduce__(self):  # type: ignore[override]
        # Default exception pickling replays ``__init__(*args)`` with
        # the formatted message as the only arg, which does not match
        # this signature — and the sharded serving tier ships raised
        # exceptions across process boundaries, where a reconstruction
        # failure kills the dispatcher's collector thread.
        return (UnknownMethodError, (self.name, self.valid))
