"""Monte-Carlo SSPPR baseline and the shared Chernoff walk budget."""

from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.montecarlo.mc import monte_carlo_ppr

__all__ = [
    "chernoff_walk_count",
    "default_mu",
    "default_failure_probability",
    "monte_carlo_ppr",
]
