"""The Monte-Carlo method for approximate SSPPR (paper Section 6.1).

Generate ``W`` independent alpha-walks from the source and estimate
``pi(s, v)`` by the fraction of walks that stop at ``v``.  With ``W``
chosen by the Chernoff bound (Eq. 12), every node with
``pi(s, v) >= mu`` is estimated within relative error ``eps`` with
probability at least ``1 - p_fail``.

Expected cost ``O(W / alpha)`` — the ``O(n log n / eps^2)`` baseline
that FORA improves by a ``1/eps`` factor and SpeedPPR by a further
``~1/eps`` (Table of Section 6).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import PPRResult
from repro.core.validation import check_alpha, check_source
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.instrumentation.counters import PushCounters
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.walks.engine import walk_stop_counts

__all__ = ["monte_carlo_ppr"]


def monte_carlo_ppr(
    graph: DiGraph,
    source: int,
    *,
    alpha: float = 0.2,
    epsilon: float = 0.5,
    mu: float | None = None,
    p_fail: float | None = None,
    num_walks: int | None = None,
    rng: np.random.Generator,
) -> PPRResult:
    """Answer an approximate SSPPR query with plain Monte-Carlo.

    Parameters
    ----------
    epsilon, mu, p_fail:
        The approximation contract; ``mu`` and ``p_fail`` default to
        ``1/n`` as in the paper.  Ignored when ``num_walks`` is given.
    num_walks:
        Explicit override of ``W`` (used by tests and ablations).
    """
    check_alpha(alpha)
    check_source(graph, source)
    if graph.num_nodes == 0:
        raise ParameterError("cannot query an empty graph")
    if mu is None:
        mu = default_mu(graph.num_nodes)
    if p_fail is None:
        p_fail = default_failure_probability(graph.num_nodes)
    if num_walks is None:
        num_walks = chernoff_walk_count(epsilon, mu, p_fail=p_fail)
    if num_walks <= 0:
        raise ParameterError(f"num_walks must be positive, got {num_walks}")

    started = time.perf_counter()
    counts, steps = walk_stop_counts(
        graph, source, num_walks, alpha=alpha, source=source, rng=rng
    )
    counters = PushCounters(random_walks=num_walks, walk_steps=steps)
    return PPRResult(
        estimate=counts / num_walks,
        residue=None,
        source=source,
        alpha=alpha,
        counters=counters,
        seconds=time.perf_counter() - started,
        method="MonteCarlo",
    )
