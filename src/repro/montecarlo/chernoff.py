"""The Chernoff-bound walk count ``W`` (paper Eq. 12).

To estimate every PPR value ``pi(s, v) >= mu`` within relative error
``eps`` with failure probability at most ``p_fail``, the Monte-Carlo
method needs

    ``W = 2 * (2 * eps / 3 + 2) * ln(1 / p_fail) / (eps^2 * mu)``

independent walks (the paper states the formula with
``p_fail = 1/n``, giving the ``log n`` numerator).  All approximate
algorithms in this library (MonteCarlo, FORA, SpeedPPR) share this one
implementation so their walk budgets are directly comparable.
"""

from __future__ import annotations

import math

from repro.core.validation import (
    check_epsilon,
    check_failure_probability,
    check_mu,
)

__all__ = ["chernoff_walk_count", "default_mu", "default_failure_probability"]


def default_mu(num_nodes: int) -> float:
    """The conventional threshold ``mu = 1/n`` (Section 2)."""
    return 1.0 / max(num_nodes, 1)


def default_failure_probability(num_nodes: int) -> float:
    """The conventional failure probability ``1/n``."""
    return 1.0 / max(num_nodes, 2)


def chernoff_walk_count(
    epsilon: float,
    mu: float,
    *,
    p_fail: float,
) -> int:
    """Number of walks ``W`` required by Eq. 12 (rounded up).

    >>> chernoff_walk_count(0.5, 0.25, p_fail=math.exp(-1))
    75
    """
    check_epsilon(epsilon)
    check_mu(mu)
    check_failure_probability(p_fail)
    w = (
        2.0
        * (2.0 * epsilon / 3.0 + 2.0)
        * math.log(1.0 / p_fail)
        / (epsilon * epsilon * mu)
    )
    return int(math.ceil(w))
