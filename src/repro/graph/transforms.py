"""Graph transformations: symmetrisation and dead-end policies.

The paper assumes (Section 2) that every node has out-degree at least 1,
justified by a conceptual edge from each dead-end node back to the
*source* of the walk.  That redirect is query-dependent, so most of our
algorithms implement it at push/walk time; this module additionally
offers *structural* policies that modify the graph once, which is what
matrix-based methods (BePI) need because their precomputation cannot
depend on the query source.

Policies
--------
``redirect-to-source``
    The paper's semantics.  Not a structural transform — returned
    unchanged here; algorithms honour it through
    :class:`repro.core.residues.DeadEndPolicy`.
``self-loop``
    Add ``(v, v)`` for each dead end.  A walk at ``v`` then loops until
    it stops, which gives the same stationary behaviour as stopping at
    ``v`` immediately (the walk can never leave), so PPR mass is
    preserved node-for-node.
``uniform-teleport``
    Connect each dead end to every node.  This matches the classic
    PageRank patch; it *changes* PPR values and is provided for
    completeness and for stress tests only.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = ["DeadEndRule", "symmetrize", "apply_dead_end_rule"]

DeadEndRule = Literal["redirect-to-source", "self-loop", "uniform-teleport"]

_VALID_RULES: tuple[str, ...] = (
    "redirect-to-source",
    "self-loop",
    "uniform-teleport",
)


def symmetrize(graph: DiGraph) -> DiGraph:
    """Return the undirected closure: every edge gains its reverse."""
    sources, targets = graph.edge_array()
    return from_edge_arrays(
        np.concatenate([sources, targets]),
        np.concatenate([targets, sources]),
        num_nodes=graph.num_nodes,
        name=graph.name,
        dedup=True,
        drop_self_loops=False,
        undirected_origin=True,
    )


def apply_dead_end_rule(graph: DiGraph, rule: DeadEndRule) -> DiGraph:
    """Structurally fix dead ends according to ``rule``.

    ``redirect-to-source`` is query-dependent and therefore a no-op at
    the graph level; it is listed so that callers can funnel every rule
    through one function.
    """
    if rule not in _VALID_RULES:
        raise ParameterError(
            f"unknown dead-end rule {rule!r}; expected one of {_VALID_RULES}"
        )
    if rule == "redirect-to-source" or not graph.has_dead_ends:
        return graph

    dead = graph.dead_ends.astype(np.int64)
    sources, targets = graph.edge_array()
    if rule == "self-loop":
        extra_sources, extra_targets = dead, dead
    else:  # uniform-teleport
        extra_sources = np.repeat(dead, graph.num_nodes)
        extra_targets = np.tile(np.arange(graph.num_nodes), dead.shape[0])
    return from_edge_arrays(
        np.concatenate([sources, extra_sources]),
        np.concatenate([targets, extra_targets]),
        num_nodes=graph.num_nodes,
        name=graph.name,
        dedup=False,
        drop_self_loops=False,
        undirected_origin=graph.undirected_origin,
    )
