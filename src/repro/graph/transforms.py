"""Graph transformations: symmetrisation, dead-end policies, reordering.

The paper assumes (Section 2) that every node has out-degree at least 1,
justified by a conceptual edge from each dead-end node back to the
*source* of the walk.  That redirect is query-dependent, so most of our
algorithms implement it at push/walk time; this module additionally
offers *structural* policies that modify the graph once, which is what
matrix-based methods (BePI) need because their precomputation cannot
depend on the query source.

Policies
--------
``redirect-to-source``
    The paper's semantics.  Not a structural transform — returned
    unchanged here; algorithms honour it through
    :class:`repro.core.residues.DeadEndPolicy`.
``self-loop``
    Add ``(v, v)`` for each dead end.  A walk at ``v`` then loops until
    it stops, which gives the same stationary behaviour as stopping at
    ``v`` immediately (the walk can never leave), so PPR mass is
    preserved node-for-node.
``uniform-teleport``
    Connect each dead end to every node.  This matches the classic
    PageRank patch; it *changes* PPR values and is provided for
    completeness and for stress tests only.

Cache-aware reordering
----------------------
:func:`reorder_for_locality` relabels the nodes so the CSR arrays the
push kernels stream become cache-friendlier: hot (high-degree) rows
cluster at the front of ``out_indices`` under the ``"degree"``
strategy, and SlashBurn's hub-and-spoke layout groups each community's
adjacency ranges contiguously under ``"slashburn"``.  PPR values are
equivariant under relabelling — ``pi_new(inverse[s]) = pi_old(s)``
permuted — so a caller (e.g. :class:`~repro.api.PPREngine` with
``reorder=...``) can solve on the reordered graph and permute the
answer back, which is exactly what the returned
:class:`ReorderResult` packages up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = [
    "DeadEndRule",
    "ReorderResult",
    "ReorderStrategy",
    "symmetrize",
    "apply_dead_end_rule",
    "reorder_for_locality",
]

ReorderStrategy = Literal["degree", "slashburn"]

_VALID_STRATEGIES: tuple[str, ...] = ("degree", "slashburn")

DeadEndRule = Literal["redirect-to-source", "self-loop", "uniform-teleport"]

_VALID_RULES: tuple[str, ...] = (
    "redirect-to-source",
    "self-loop",
    "uniform-teleport",
)


def symmetrize(graph: DiGraph) -> DiGraph:
    """Return the undirected closure: every edge gains its reverse."""
    sources, targets = graph.edge_array()
    return from_edge_arrays(
        np.concatenate([sources, targets]),
        np.concatenate([targets, sources]),
        num_nodes=graph.num_nodes,
        name=graph.name,
        dedup=True,
        drop_self_loops=False,
        undirected_origin=True,
    )


def apply_dead_end_rule(graph: DiGraph, rule: DeadEndRule) -> DiGraph:
    """Structurally fix dead ends according to ``rule``.

    ``redirect-to-source`` is query-dependent and therefore a no-op at
    the graph level; it is listed so that callers can funnel every rule
    through one function.
    """
    if rule not in _VALID_RULES:
        raise ParameterError(
            f"unknown dead-end rule {rule!r}; expected one of {_VALID_RULES}"
        )
    if rule == "redirect-to-source" or not graph.has_dead_ends:
        return graph

    dead = graph.dead_ends.astype(np.int64)
    sources, targets = graph.edge_array()
    if rule == "self-loop":
        extra_sources, extra_targets = dead, dead
    else:  # uniform-teleport
        extra_sources = np.repeat(dead, graph.num_nodes)
        extra_targets = np.tile(np.arange(graph.num_nodes), dead.shape[0])
    return from_edge_arrays(
        np.concatenate([sources, extra_sources]),
        np.concatenate([targets, extra_targets]),
        num_nodes=graph.num_nodes,
        name=graph.name,
        dedup=False,
        drop_self_loops=False,
        undirected_origin=graph.undirected_origin,
    )


@dataclass(frozen=True)
class ReorderResult:
    """A locality-reordered graph plus the permutation to undo it.

    Attributes
    ----------
    graph:
        The relabelled :class:`DiGraph` (same node/edge counts; node
        ``inverse[v]`` of this graph is node ``v`` of the original).
    order:
        ``order[new_id] = old_id`` — the layout permutation.
    inverse:
        ``inverse[old_id] = new_id`` — the relabelling map.
    strategy:
        Which ordering produced the layout.
    """

    graph: DiGraph
    order: np.ndarray
    inverse: np.ndarray
    strategy: str

    def to_internal(self, node: int) -> int:
        """Map an original node id into the reordered graph."""
        return int(self.inverse[int(node)])

    def to_external(self, node: int) -> int:
        """Map a reordered node id back to the original labelling."""
        return int(self.order[int(node)])

    def restore_vector(self, values: np.ndarray) -> np.ndarray:
        """Re-index a per-node vector of the reordered graph to original ids.

        ``restore_vector(v)[old_id] == v[inverse[old_id]]`` — the
        inverse of solving on the reordered graph, applied along the
        last axis so ``(B, n)`` blocks restore too.
        """
        return np.asarray(values)[..., self.inverse]


def reorder_for_locality(
    graph: DiGraph, *, strategy: ReorderStrategy = "degree"
) -> ReorderResult:
    """Relabel ``graph`` so the push kernels walk a cache-friendly CSR.

    Strategies
    ----------
    ``"degree"``
        Nodes sorted by descending total (in + out) degree, ties by
        node id.  Scale-free graphs concentrate most edges on few
        hubs; giving those hubs the smallest ids packs the hot rows of
        ``out_indices`` (and of the cached ``P^T``) into a contiguous
        prefix, so frontier gathers and sweeps touch far fewer cache
        lines.  Cheap (one sort) and usually most of the win.
    ``"slashburn"``
        The hub-and-spoke ordering of :func:`repro.bepi.slashburn`:
        spoke communities become contiguous id ranges (their
        intra-community edges land in dense diagonal blocks) with the
        hubs at the end.  Costlier to compute, better locality on
        graphs with strong community structure.

    Returns a :class:`ReorderResult`; the relabelled graph preserves
    edge multiplicity, self-loops, and the ``undirected_origin`` flag,
    and its adjacency lists are sorted like any built graph.  PPR on
    the reordered graph equals the original's permuted — solve there,
    then :meth:`ReorderResult.restore_vector` the answer back.
    """
    if strategy not in _VALID_STRATEGIES:
        raise ParameterError(
            f"unknown reorder strategy {strategy!r}; expected one of "
            f"{_VALID_STRATEGIES}"
        )
    n = graph.num_nodes
    if strategy == "degree":
        total_degree = graph.out_degree + graph.in_degree
        # Stable sort on the negated degree: descending degree, ties in
        # ascending node id — deterministic across runs and platforms.
        order = np.argsort(-total_degree, kind="stable").astype(np.int64)
    else:
        from repro.bepi.slashburn import slashburn

        order = slashburn(graph).order.astype(np.int64)

    inverse = np.empty_like(order)
    inverse[order] = np.arange(n, dtype=np.int64)

    sources, targets = graph.edge_array()
    relabelled = from_edge_arrays(
        inverse[sources],
        inverse[targets],
        num_nodes=n,
        name=f"{graph.name}@{strategy}" if graph.name else "",
        dedup=False,
        drop_self_loops=False,
        undirected_origin=graph.undirected_origin,
    )
    order.flags.writeable = False
    inverse.flags.writeable = False
    return ReorderResult(
        graph=relabelled, order=order, inverse=inverse, strategy=strategy
    )
