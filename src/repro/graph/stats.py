"""Graph statistics for Table-1-style reporting and generator validation.

:class:`GraphStats` captures exactly the columns of the paper's Table 1
(``n``, ``m``, ``m/n``, type) plus degree-distribution diagnostics that
the dataset generators use to confirm their output is scale-free
(power-law tail exponent, Gini coefficient of the degree distribution,
maximum degree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["GraphStats", "compute_stats", "format_si", "power_law_exponent_mle"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one dataset (one row of Table 1, extended)."""

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    graph_type: str
    max_out_degree: int
    max_in_degree: int
    dead_ends: int
    degree_gini: float
    power_law_alpha: float

    def table1_row(self) -> tuple[str, str, str, str, str]:
        """The (Name, n, m, m/n, Type) row as formatted strings."""
        return (
            self.name,
            format_si(self.num_nodes),
            format_si(self.num_edges),
            f"{self.average_degree:.2f}",
            self.graph_type,
        )


def compute_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    out_degree = graph.out_degree
    in_degree = graph.in_degree
    return GraphStats(
        name=graph.name or "unnamed",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        graph_type="undirected" if graph.undirected_origin else "directed",
        max_out_degree=int(out_degree.max(initial=0)),
        max_in_degree=int(in_degree.max(initial=0)),
        dead_ends=int(graph.dead_ends.shape[0]),
        degree_gini=_gini(out_degree),
        power_law_alpha=power_law_exponent_mle(out_degree),
    )


def power_law_exponent_mle(degrees: np.ndarray, d_min: int = 2) -> float:
    """Maximum-likelihood power-law exponent of a degree sample.

    Uses the continuous Hill estimator
    ``alpha = 1 + k / sum(ln(d_i / (d_min - 1/2)))`` over degrees
    ``>= d_min`` (Clauset, Shalizi & Newman 2009).  Returns ``nan`` when
    fewer than 10 degrees qualify — tiny test graphs are not expected to
    exhibit a power law.
    """
    tail = degrees[degrees >= d_min].astype(np.float64)
    if tail.shape[0] < 10:
        return float("nan")
    return float(1.0 + tail.shape[0] / np.sum(np.log(tail / (d_min - 0.5))))


def format_si(value: int) -> str:
    """Format counts as in Table 1: ``317K``, ``2.10M``, ``1.47B``."""
    if value >= 10**9:
        return f"{value / 10**9:.2f}B"
    if value >= 10**6:
        return f"{value / 10**6:.2f}M"
    if value >= 10**3:
        return f"{value / 10**3:.0f}K"
    return str(value)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skewed)."""
    if values.shape[0] == 0:
        return 0.0
    sorted_values = np.sort(values.astype(np.float64))
    total = sorted_values.sum()
    if total == 0:
        return 0.0
    n = sorted_values.shape[0]
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * sorted_values)) / (n * total) - (n + 1) / n)
