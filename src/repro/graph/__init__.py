"""Graph substrate: CSR directed graphs, builders, I/O, cleaning, stats.

This subpackage is self-contained — it has no dependency on the PPR
algorithms — and provides the data structures every other subpackage
consumes.
"""

from repro.graph.build import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edge_arrays,
    from_edges,
    paper_example_graph,
    star_graph,
)
from repro.graph.cleaning import CleaningReport, clean, remove_isolated_nodes
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph, EdgeUpdate, sample_edge_update
from repro.graph.io import (
    load_npz,
    parse_edge_list,
    read_edge_list,
    save_npz,
    write_edge_list,
)
from repro.graph.stats import GraphStats, compute_stats
from repro.graph.transforms import (
    DeadEndRule,
    ReorderResult,
    ReorderStrategy,
    apply_dead_end_rule,
    reorder_for_locality,
    symmetrize,
)

__all__ = [
    "DiGraph",
    "DynamicGraph",
    "EdgeUpdate",
    "sample_edge_update",
    "from_edges",
    "from_edge_arrays",
    "from_adjacency",
    "empty_graph",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "paper_example_graph",
    "CleaningReport",
    "clean",
    "remove_isolated_nodes",
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "GraphStats",
    "compute_stats",
    "DeadEndRule",
    "ReorderResult",
    "ReorderStrategy",
    "apply_dead_end_rule",
    "reorder_for_locality",
    "symmetrize",
]
