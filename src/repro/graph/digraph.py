"""Immutable CSR directed graph used by every algorithm in this library.

The paper's algorithms (Power Iteration, Forward Push and their hybrids)
only ever need two access patterns:

* stream the out-neighbours of one node (``out_neighbors``), and
* stream *all* adjacency lists in node-id order (``out_indptr`` /
  ``out_indices``), which is the "large concatenated edge array" that
  Section 5 of the paper credits for PowerPush's cache-friendly
  sequential-scan phase.

Both are served by a Compressed Sparse Row (CSR) layout: ``out_indices``
concatenates the adjacency lists of nodes ``0..n-1`` and
``out_indptr[v]:out_indptr[v+1]`` delimits node ``v``'s list.  The
reverse (in-neighbour) CSR is built lazily because only a few consumers
(BePI's transposed system, graph statistics) require it.

Node ids are dense integers ``0..n-1``; use :mod:`repro.graph.cleaning`
to relabel arbitrary ids.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphConstructionError, NodeNotFoundError

__all__ = ["DiGraph"]


class DiGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    out_indptr:
        ``int64`` array of length ``n + 1``; monotone, starts at 0, ends
        at ``m``.
    out_indices:
        ``int32`` array of length ``m`` holding the concatenated
        out-adjacency lists.
    name:
        Optional human-readable name (dataset names use this).
    undirected_origin:
        True when the graph was produced by symmetrising an undirected
        edge list (as the paper does for DBLP and Orkut).  Only used for
        reporting (Table 1's "type" column).

    Notes
    -----
    Instances are *logically* immutable: the backing arrays are marked
    read-only, and derived structures (in-CSR, degree arrays) are cached.
    """

    __slots__ = (
        "_out_indptr",
        "_out_indices",
        "_n",
        "_m",
        "_name",
        "_undirected_origin",
        "_out_degree",
        "_in_degree",
        "_in_indptr",
        "_in_indices",
        "_dead_ends",
        "_pt_matrix",
        "_edge_sources",
    )

    def __init__(
        self,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        *,
        name: str = "",
        undirected_origin: bool = False,
        validate: bool = True,
    ) -> None:
        out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        out_indices = np.ascontiguousarray(out_indices, dtype=np.int32)
        if validate:
            _validate_csr(out_indptr, out_indices)
        self._out_indptr = out_indptr
        self._out_indices = out_indices
        self._out_indptr.flags.writeable = False
        self._out_indices.flags.writeable = False
        self._n = int(out_indptr.shape[0] - 1)
        self._m = int(out_indices.shape[0])
        self._name = name
        self._undirected_origin = bool(undirected_origin)
        self._out_degree: np.ndarray | None = None
        self._in_degree: np.ndarray | None = None
        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None
        self._dead_ends: np.ndarray | None = None
        self._pt_matrix = None
        self._edge_sources: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    @property
    def name(self) -> str:
        """Dataset name, or an empty string."""
        return self._name

    @property
    def undirected_origin(self) -> bool:
        """Whether the graph came from symmetrising an undirected list."""
        return self._undirected_origin

    @property
    def average_degree(self) -> float:
        """``m / n`` — the density column of the paper's Table 1."""
        if self._n == 0:
            return 0.0
        return self._m / self._n

    @property
    def out_indptr(self) -> np.ndarray:
        """CSR row-pointer array (length ``n + 1``, read-only)."""
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        """CSR concatenated out-adjacency lists (length ``m``, read-only)."""
        return self._out_indices

    @property
    def out_degree(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array (read-only)."""
        if self._out_degree is None:
            deg = np.diff(self._out_indptr)
            deg.flags.writeable = False
            self._out_degree = deg
        return self._out_degree

    @property
    def in_degree(self) -> np.ndarray:
        """In-degree of every node as an ``int64`` array (read-only)."""
        if self._in_degree is None:
            deg = np.bincount(self._out_indices, minlength=self._n).astype(np.int64)
            deg.flags.writeable = False
            self._in_degree = deg
        return self._in_degree

    @property
    def in_indptr(self) -> np.ndarray:
        """Row pointers of the in-neighbour (transposed) CSR."""
        self._ensure_in_csr()
        assert self._in_indptr is not None
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """Concatenated in-adjacency lists of the transposed CSR."""
        self._ensure_in_csr()
        assert self._in_indices is not None
        return self._in_indices

    @property
    def dead_ends(self) -> np.ndarray:
        """Sorted array of node ids with out-degree zero (read-only)."""
        if self._dead_ends is None:
            ends = np.flatnonzero(self.out_degree == 0).astype(np.int32)
            ends.flags.writeable = False
            self._dead_ends = ends
        return self._dead_ends

    @property
    def has_dead_ends(self) -> bool:
        """True when at least one node has no out-neighbours."""
        return self.dead_ends.shape[0] > 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Return a read-only view of ``v``'s out-neighbour list."""
        self._check_node(v)
        return self._out_indices[self._out_indptr[v] : self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Return a read-only view of ``v``'s in-neighbour list."""
        self._check_node(v)
        self._ensure_in_csr()
        assert self._in_indptr is not None and self._in_indices is not None
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the directed edge ``(u, v)`` exists.

        Adjacency lists are kept sorted by :mod:`repro.graph.build`, so
        this is a binary search; unsorted lists (possible when a caller
        hand-assembles CSR arrays) fall back to a linear scan.
        """
        neighbors = self.out_neighbors(u)
        self._check_node(v)
        if neighbors.shape[0] == 0:
            return False
        pos = np.searchsorted(neighbors, v)
        if pos < neighbors.shape[0] and neighbors[pos] == v:
            return True
        # Fallback for unsorted adjacency lists.
        return bool(np.any(neighbors == v))

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every directed edge ``(u, v)`` in node-id order."""
        indptr, indices = self._out_indptr, self._out_indices
        for u in range(self._n):
            for pos in range(indptr[u], indptr[u + 1]):
                yield u, int(indices[pos])

    @property
    def edge_sources(self) -> np.ndarray:
        """Source node of every edge in CSR order (length ``m``, read-only).

        The flattened "which row does this edge belong to" gather
        index: ``edge_sources[e]`` is the node whose adjacency list
        contains position ``e`` of :attr:`out_indices`.  Cached because
        every consumer of edge-level views (``edge_array``, the in-CSR
        build, per-edge scatters) used to rebuild this ``O(m)`` repeat
        on each call.
        """
        if self._edge_sources is None:
            sources = np.repeat(
                np.arange(self._n, dtype=np.int32), np.diff(self._out_indptr)
            )
            sources.flags.writeable = False
            self._edge_sources = sources
        return self._edge_sources

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` arrays of all edges."""
        return self.edge_sources.copy(), self._out_indices.copy()

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """Return the graph with every edge reversed."""
        self._ensure_in_csr()
        assert self._in_indptr is not None and self._in_indices is not None
        return DiGraph(
            self._in_indptr.copy(),
            self._in_indices.copy(),
            name=f"{self._name}-reversed" if self._name else "",
            undirected_origin=self._undirected_origin,
            validate=False,
        )

    def to_scipy_csr(self, weighted: bool = False):
        """Return the adjacency (or row-stochastic transition) matrix.

        Parameters
        ----------
        weighted:
            When True each row ``v`` is divided by ``d_v`` producing the
            transition matrix ``P`` of the paper (dead-end rows are all
            zero and must be handled by the caller's dead-end policy).
        """
        from scipy.sparse import csr_matrix

        if weighted:
            deg = self.out_degree
            weights = np.repeat(
                np.divide(
                    1.0,
                    deg,
                    out=np.zeros(self._n, dtype=np.float64),
                    where=deg > 0,
                ),
                deg,
            )
        else:
            weights = np.ones(self._m, dtype=np.float64)
        return csr_matrix(
            (weights, self._out_indices, self._out_indptr),
            shape=(self._n, self._n),
        )

    def transition_matrix_transpose(self):
        """Cached ``P^T`` as a scipy CSR matrix.

        ``(P^T @ r)[v] = sum_{u -> v} r[u] / d_u`` is the one-step
        forward propagation used by the vectorised Power-Iteration and
        sweep kernels.  Dead-end rows of ``P`` are zero; their mass must
        be handled by the caller's dead-end policy.
        """
        if self._pt_matrix is None:
            self._pt_matrix = self.to_scipy_csr(weighted=True).T.tocsr()
        return self._pt_matrix

    def pt_csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw ``(indptr, indices, data)`` of the cached ``P^T`` CSR.

        Compiled kernel backends (:mod:`repro.backends.numba_backend`)
        loop over these arrays directly instead of going through the
        scipy matrix object, so the accessor keeps scipy types out of
        the backend layer while sharing the one cached transpose.
        """
        matrix = self.transition_matrix_transpose()
        return matrix.indptr, matrix.indices, matrix.data

    def warm_push_caches(self) -> "DiGraph":
        """Materialise every cached artefact the push kernels read.

        Touches the degree/dead-end arrays, the flattened
        :attr:`edge_sources` gather index, and the transposed
        transition matrix, so a serving engine (or a benchmark that
        wants construction out of its timed region) pays them once up
        front instead of lazily inside the first query.  Returns
        ``self`` for chaining.
        """
        self.out_degree
        self.dead_ends
        self.edge_sources
        self.transition_matrix_transpose()
        return self

    def adopt_push_caches(
        self,
        *,
        pt_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        edge_sources: np.ndarray | None = None,
    ) -> "DiGraph":
        """Install pre-built push caches instead of computing them.

        The shared-memory serving path
        (:mod:`repro.serving.shm`) exports one process's warmed caches
        — the ``P^T`` CSR arrays and the flattened
        :attr:`edge_sources` gather index — and re-attaches them in
        worker processes as zero-copy views over the shared segment.
        This installs those views where the lazy properties would have
        cached freshly computed (and byte-identical) arrays, so no
        attacher pays the ``O(m)`` rebuild.

        Arrays are adopted as given (no copy); shapes are validated
        against the graph, and callers should pass read-only views.
        Returns ``self`` for chaining.
        """
        if pt_arrays is not None:
            indptr, indices, data = pt_arrays
            if indptr.shape != (self._n + 1,):
                raise GraphConstructionError(
                    f"P^T indptr has shape {indptr.shape}, "
                    f"expected ({self._n + 1},)"
                )
            if indices.shape != data.shape:
                raise GraphConstructionError(
                    f"P^T indices/data shapes differ: "
                    f"{indices.shape} vs {data.shape}"
                )
            from scipy.sparse import csr_matrix

            # No-copy when dtypes already match what scipy expects.
            self._pt_matrix = csr_matrix(
                (data, indices, indptr), shape=(self._n, self._n)
            )
        if edge_sources is not None:
            if edge_sources.shape != (self._m,):
                raise GraphConstructionError(
                    f"edge_sources has shape {edge_sources.shape}, "
                    f"expected ({self._m},)"
                )
            self._edge_sources = edge_sources
        return self

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"DiGraph(n={self._n}, m={self._m}{label}, "
            f"avg_degree={self.average_degree:.2f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._m, self._out_indices[: 64].tobytes()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise NodeNotFoundError(
                f"node {v} is outside [0, {self._n}) for graph {self._name!r}"
            )

    def _ensure_in_csr(self) -> None:
        if self._in_indptr is not None:
            return
        in_degree = np.bincount(self._out_indices, minlength=self._n)
        in_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(in_degree, out=in_indptr[1:])
        in_indices = np.empty(self._m, dtype=np.int32)
        # Stable sort by target groups each node's in-neighbours in
        # source order; the cached edge_sources array supplies the
        # per-edge row labels without another O(m) repeat.
        order = np.argsort(self._out_indices, kind="stable")
        in_indices[:] = self.edge_sources[order]
        in_indptr.flags.writeable = False
        in_indices.flags.writeable = False
        self._in_indptr = in_indptr
        self._in_indices = in_indices


def _validate_csr(indptr: np.ndarray, indices: np.ndarray) -> None:
    """Raise :class:`GraphConstructionError` on malformed CSR arrays."""
    if indptr.ndim != 1 or indptr.shape[0] < 1:
        raise GraphConstructionError("out_indptr must be a 1-D array of length n+1")
    if indices.ndim != 1:
        raise GraphConstructionError("out_indices must be a 1-D array")
    if indptr[0] != 0:
        raise GraphConstructionError("out_indptr must start at 0")
    if indptr[-1] != indices.shape[0]:
        raise GraphConstructionError(
            f"out_indptr ends at {int(indptr[-1])} but there are "
            f"{indices.shape[0]} edges"
        )
    if np.any(np.diff(indptr) < 0):
        raise GraphConstructionError("out_indptr must be non-decreasing")
    n = indptr.shape[0] - 1
    if indices.shape[0] and (indices.min() < 0 or indices.max() >= n):
        raise GraphConstructionError(
            f"edge targets must lie in [0, {n}); found range "
            f"[{int(indices.min())}, {int(indices.max())}]"
        )
