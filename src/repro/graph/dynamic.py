"""Versioned dynamic graphs: an immutable CSR base plus a delta overlay.

:class:`~repro.graph.digraph.DiGraph` is deliberately immutable — every
algorithm in the library relies on its CSR arrays never changing under
it.  Evolving workloads therefore go through :class:`DynamicGraph`,
which layers mutable insert/delete buffers over an immutable base
snapshot:

* every successful mutation bumps a monotonically increasing
  ``version`` (the cache-invalidation key used by
  :class:`~repro.api.engine.PPREngine`),
* :meth:`snapshot` materialises the current logical graph as a fresh
  immutable :class:`DiGraph` (cached per version, so repeated reads at
  the same version are free),
* :meth:`compact` merges the deltas into the base snapshot, resetting
  the overlay without changing the logical graph or its version,
* an append-only **journal** records ``(version, op, u, v,
  old out-degree of u)`` for every mutation, which is exactly the
  information :class:`~repro.core.incremental.IncrementalPPR` needs to
  apply the paper's push-invariant residue corrections lazily; once
  every consumer has caught up, :meth:`trim_journal` reclaims the
  replayed prefix so memory tracks *pending* work, not lifetime
  updates (the engine trims automatically behind its trackers).

The node set is fixed at construction (dense ids ``0..n-1``), matching
the rest of the library; self-loops and parallel edges are rejected,
matching the cleaning conventions of :mod:`repro.graph.build`.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from repro.errors import GraphConstructionError, NodeNotFoundError, ParameterError
from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = ["DynamicGraph", "EdgeUpdate", "sample_edge_update"]

#: Accepted spellings for the two update operations.
_INSERT_OPS = frozenset({"+", "insert", "add"})
_DELETE_OPS = frozenset({"-", "delete", "remove"})


class EdgeUpdate(NamedTuple):
    """One journalled mutation: ``op`` is ``"+"`` (insert) or ``"-"``.

    ``old_out_degree`` is the out-degree of ``source`` *before* the
    mutation — the degree the push invariant's residue correction must
    be scaled by.
    """

    version: int
    op: str
    source: int
    target: int
    old_out_degree: int


class DynamicGraph:
    """A mutable directed graph: base CSR snapshot + delta overlay.

    Parameters
    ----------
    base:
        The immutable starting snapshot.  The node set is frozen at
        ``base.num_nodes``.
    name:
        Human-readable name; defaults to the base graph's name.
    """

    __slots__ = (
        "_base",
        "_name",
        "_version",
        "_inserts",
        "_deletes",
        "_num_inserts",
        "_num_deletes",
        "_journal",
        "_journal_floor",
        "_snapshot_cache",
        "_wal_hook",
    )

    def __init__(
        self,
        base: DiGraph,
        *,
        name: str | None = None,
        initial_version: int = 0,
    ) -> None:
        if initial_version < 0:
            raise ParameterError(
                f"initial_version must be >= 0, got {initial_version}"
            )
        self._base = base
        self._name = base.name if name is None else name
        #: nonzero when restoring durable state: the base snapshot then
        #: already reflects every mutation up to ``initial_version``
        #: (cold-restart recovery; see :mod:`repro.durability`), and the
        #: journal floor starts there because pre-restore entries are
        #: gone — tracker consumers resync from the snapshot.
        self._version = int(initial_version)
        #: per-source overlay sets; only touched sources get an entry
        self._inserts: dict[int, set[int]] = {}
        self._deletes: dict[int, set[int]] = {}
        self._num_inserts = 0
        self._num_deletes = 0
        self._journal: list[EdgeUpdate] = []
        self._journal_floor = int(initial_version)
        self._snapshot_cache: tuple[int, DiGraph] | None = None
        self._wal_hook: object | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> DiGraph:
        """The immutable snapshot the overlay is layered on."""
        return self._base

    @property
    def name(self) -> str:
        return self._name

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter (starts at 0)."""
        return self._version

    @property
    def num_nodes(self) -> int:
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count of the current logical graph."""
        return self._base.num_edges - self._num_deletes + self._num_inserts

    @property
    def pending_updates(self) -> int:
        """Overlay size: edges inserted or deleted since the last compact."""
        return self._num_inserts + self._num_deletes

    @property
    def has_dead_ends(self) -> bool:
        """True when some node of the current logical graph has no out-edges.

        Base dead ends are checked against the overlay, and nodes whose
        last out-edge was deleted are found by scanning the touched
        sources — no snapshot materialisation needed.
        """
        for v in self._base.dead_ends.tolist():
            if self.out_degree_of(v) == 0:
                return True
        for v in self._deletes:
            if self.out_degree_of(v) == 0:
                return True
        return False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def out_degree_of(self, v: int) -> int:
        """Out-degree of ``v`` in the current logical graph."""
        self._check_node(v)
        degree = int(self._base.out_degree[v])
        degree -= len(self._deletes.get(v, ()))
        degree += len(self._inserts.get(v, ()))
        return degree

    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbour ids of ``v`` in the current logical graph."""
        self._check_node(v)
        neighbors = self._base.out_neighbors(v)
        deleted = self._deletes.get(v)
        inserted = self._inserts.get(v)
        if not deleted and not inserted:
            return neighbors
        merged = set(neighbors.tolist())
        if deleted:
            merged -= deleted
        if inserted:
            merged |= inserted
        return np.array(sorted(merged), dtype=np.int32)

    def has_edge(self, u: int, v: int) -> bool:
        """True when the directed edge ``(u, v)`` currently exists."""
        self._check_node(u)
        self._check_node(v)
        if v in self._inserts.get(u, ()):
            return True
        if v in self._deletes.get(u, ()):
            return False
        return self._base.has_edge(u, v)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> int:
        """Insert the directed edge ``(u, v)``; return the new version.

        Raises :class:`~repro.errors.GraphConstructionError` when the
        edge already exists, and :class:`~repro.errors.ParameterError`
        for self-loops (the library's cleaning conventions exclude
        them).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ParameterError(
                f"self-loop ({u}, {v}) rejected: DynamicGraph keeps the "
                "library's no-self-loop convention"
            )
        if self.has_edge(u, v):
            raise GraphConstructionError(
                f"edge ({u}, {v}) already exists (parallel edges are not "
                "supported)"
            )
        old_degree = self.out_degree_of(u)
        deleted = self._deletes.get(u)
        if deleted and v in deleted:
            deleted.discard(v)
            if not deleted:
                del self._deletes[u]
            self._num_deletes -= 1
        else:
            self._inserts.setdefault(u, set()).add(v)
            self._num_inserts += 1
        return self._commit("+", u, v, old_degree)

    def remove_edge(self, u: int, v: int) -> int:
        """Delete the directed edge ``(u, v)``; return the new version.

        Raises :class:`~repro.errors.GraphConstructionError` when the
        edge does not exist.
        """
        self._check_node(u)
        self._check_node(v)
        if not self.has_edge(u, v):
            raise GraphConstructionError(f"edge ({u}, {v}) does not exist")
        old_degree = self.out_degree_of(u)
        inserted = self._inserts.get(u)
        if inserted and v in inserted:
            inserted.discard(v)
            if not inserted:
                del self._inserts[u]
            self._num_inserts -= 1
        else:
            self._deletes.setdefault(u, set()).add(v)
            self._num_deletes += 1
        return self._commit("-", u, v, old_degree)

    def apply_updates(
        self, updates: Iterable[tuple[str, int, int]]
    ) -> int:
        """Apply a batch of ``(op, u, v)`` updates; return the new version.

        ``op`` accepts ``"+"``/``"insert"``/``"add"`` and
        ``"-"``/``"delete"``/``"remove"``.  Updates apply in order and
        the batch is *not* atomic: a bad update raises after the
        preceding ones have been applied (each applied update already
        has its own journal entry and version).
        """
        for op, u, v in updates:
            key = str(op).strip().lower()
            if key in _INSERT_OPS:
                self.add_edge(int(u), int(v))
            elif key in _DELETE_OPS:
                self.remove_edge(int(u), int(v))
            else:
                raise ParameterError(
                    f"unknown edge-update op {op!r}; expected one of "
                    f"{sorted(_INSERT_OPS | _DELETE_OPS)}"
                )
        return self._version

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    @property
    def journal_floor(self) -> int:
        """Highest version whose journal entries have been trimmed away.

        :meth:`updates_since` can only replay from versions ``>=``
        this floor; consumers that fell further behind must resync
        from a snapshot instead.
        """
        return self._journal_floor

    def updates_since(self, version: int) -> list[EdgeUpdate]:
        """Journal entries with ``entry.version > version``, in order.

        Versions advance by exactly 1 per mutation, so this is a slice;
        a ``version`` ahead of the graph — or behind
        :attr:`journal_floor` — raises
        :class:`~repro.errors.ParameterError`.
        """
        if version < 0 or version > self._version:
            raise ParameterError(
                f"version {version} outside [0, {self._version}]"
            )
        if version < self._journal_floor:
            raise ParameterError(
                f"journal trimmed up to version {self._journal_floor}; "
                f"cannot replay from version {version} — resync from a "
                f"snapshot instead"
            )
        return self._journal[version - self._journal_floor:]

    def trim_journal(self, version: int) -> int:
        """Drop journal entries with ``entry.version <= version``.

        Call once every journal consumer has replayed past ``version``
        (versions ahead of the graph are clamped).  Returns the number
        of entries dropped; the journal then holds only
        ``(journal_floor, current version]``.  A consumer that fell
        behind the floor cannot replay and must resync from a snapshot
        (:class:`~repro.core.incremental.IncrementalPPR` does so
        automatically, at from-scratch cost) — so the trimmer should
        know every consumer, as :class:`~repro.api.engine.PPREngine`
        does for its own trackers.
        """
        version = min(version, self._version)
        dropped = max(0, version - self._journal_floor)
        if dropped:
            self._journal = self._journal[dropped:]
            self._journal_floor = version
        return dropped

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> DiGraph:
        """The current logical graph as an immutable CSR :class:`DiGraph`.

        Cached per version; with an empty overlay the base snapshot is
        returned as-is.
        """
        if self.pending_updates == 0:
            return self._base
        if (
            self._snapshot_cache is not None
            and self._snapshot_cache[0] == self._version
        ):
            return self._snapshot_cache[1]
        sources, targets = self._base.edge_array()
        if self._num_deletes:
            n = self.num_nodes
            keys = sources.astype(np.int64) * n + targets.astype(np.int64)
            dropped = np.fromiter(
                (u * n + v for u, vs in self._deletes.items() for v in vs),
                dtype=np.int64,
                count=self._num_deletes,
            )
            keep = ~np.isin(keys, dropped)
            sources, targets = sources[keep], targets[keep]
        if self._num_inserts:
            extra_sources = np.fromiter(
                (u for u, vs in self._inserts.items() for _ in vs),
                dtype=np.int64,
                count=self._num_inserts,
            )
            extra_targets = np.fromiter(
                (v for vs in self._inserts.values() for v in vs),
                dtype=np.int64,
                count=self._num_inserts,
            )
            sources = np.concatenate([sources.astype(np.int64), extra_sources])
            targets = np.concatenate([targets.astype(np.int64), extra_targets])
        snap = from_edge_arrays(
            sources,
            targets,
            num_nodes=self.num_nodes,
            name=self._name,
            dedup=False,
            drop_self_loops=False,
            undirected_origin=self._base.undirected_origin,
        )
        self._snapshot_cache = (self._version, snap)
        return snap

    def compact(self) -> DiGraph:
        """Merge the overlay into a fresh base snapshot and return it.

        The logical graph (and therefore ``version``) is unchanged —
        compaction is purely a representation change that restores
        CSR-speed reads and empties the delta buffers.
        """
        snap = self.snapshot()
        self._base = snap
        self._inserts.clear()
        self._deletes.clear()
        self._num_inserts = 0
        self._num_deletes = 0
        self._snapshot_cache = None
        if self._wal_hook is not None:
            # Compaction rebases the CSR; an attached durability layer
            # must cover the rebase with a checkpoint so recovery never
            # replays journal entries against the wrong base (see
            # DurabilityManager.on_compact).
            self._wal_hook.on_compact(self)  # type: ignore[attr-defined]
        return snap

    # ------------------------------------------------------------------
    # Durability hook
    # ------------------------------------------------------------------
    def attach_wal_hook(self, hook: object) -> None:
        """Attach a durability observer (one at a time).

        ``hook`` must provide ``on_commit(entry: EdgeUpdate)`` — called
        after every successful mutation — and ``on_compact(graph)`` —
        called after :meth:`compact` rebases the CSR.  Used by
        :class:`~repro.durability.manager.DurabilityManager`; attaching
        a second hook raises :class:`~repro.errors.ParameterError`.
        """
        if self._wal_hook is not None and self._wal_hook is not hook:
            raise ParameterError(
                "a WAL hook is already attached to this DynamicGraph"
            )
        self._wal_hook = hook

    def detach_wal_hook(self) -> None:
        self._wal_hook = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _commit(self, op: str, u: int, v: int, old_degree: int) -> int:
        self._version += 1
        self._snapshot_cache = None
        entry = EdgeUpdate(self._version, op, u, v, old_degree)
        self._journal.append(entry)
        if self._wal_hook is not None:
            self._wal_hook.on_commit(entry)  # type: ignore[attr-defined]
        return self._version

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._base.num_nodes:
            raise NodeNotFoundError(
                f"node {v} is outside [0, {self._base.num_nodes}) for "
                f"dynamic graph {self._name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"DynamicGraph(n={self.num_nodes}, m={self.num_edges}{label}, "
            f"version={self._version}, pending={self.pending_updates})"
        )


def sample_edge_update(
    graph: DynamicGraph,
    rng: np.random.Generator,
    *,
    p_insert: float = 0.5,
    max_tries: int = 256,
) -> tuple[str, int, int]:
    """Sample one valid random edge update for ``graph``'s current state.

    The sampled stream is the canonical evolving-graph workload used by
    the dynamic experiment, benchmark, and tests.  Two safety rules
    keep the workload inside the incrementally-maintainable regime:
    insertions start at nodes that already have out-edges, and
    deletions never remove a node's last out-edge — so the graph stays
    dead-end-free and every update admits the degree-scaled residue
    correction.

    The update is returned, *not* applied; feed it to
    :meth:`DynamicGraph.apply_updates` (or
    :meth:`~repro.api.engine.PPREngine.apply_updates`).
    """
    n = graph.num_nodes
    if n < 3:
        raise ParameterError("sampling updates needs at least 3 nodes")
    for _ in range(max_tries):
        u = int(rng.integers(0, n))
        degree = graph.out_degree_of(u)
        if rng.random() < p_insert:
            if degree == 0 or degree >= n - 1:
                continue
            v = int(rng.integers(0, n))
            if v == u or graph.has_edge(u, v):
                continue
            return ("+", u, v)
        if degree >= 2:
            neighbors = graph.out_neighbors(u)
            v = int(neighbors[rng.integers(0, neighbors.shape[0])])
            return ("-", u, v)
    raise ParameterError(
        f"could not sample a valid edge update in {max_tries} tries "
        f"(graph may be too dense or too sparse)"
    )
