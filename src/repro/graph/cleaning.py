"""Dataset-cleaning pipeline mirroring the paper's Section 8.

The paper prepares each SNAP dataset as follows:

1. undirected graphs (DBLP, Orkut) are symmetrised — every undirected
   edge becomes two directed edges;
2. isolated nodes (no in- nor out-edges) are removed;
3. remaining nodes are relabelled with consecutive integers from 0.

:func:`clean` performs the full pipeline and returns both the cleaned
graph and a :class:`CleaningReport` recording what was removed, so the
experiment harness can print Table-1-style statistics about the final
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.build import from_edge_arrays
from repro.graph.digraph import DiGraph

__all__ = ["CleaningReport", "clean", "remove_isolated_nodes", "relabel_nodes"]


@dataclass(frozen=True)
class CleaningReport:
    """What the cleaning pipeline did to a raw edge list."""

    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int
    isolated_removed: int
    self_loops_removed: int
    duplicates_removed: int

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"nodes {self.nodes_before} -> {self.nodes_after} "
            f"(-{self.isolated_removed} isolated), "
            f"edges {self.edges_before} -> {self.edges_after} "
            f"(-{self.self_loops_removed} self-loops, "
            f"-{self.duplicates_removed} duplicates)"
        )


def clean(
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    symmetrize: bool = False,
    name: str = "",
) -> tuple[DiGraph, CleaningReport]:
    """Run the full Section-8 cleaning pipeline on raw edge arrays.

    Parameters
    ----------
    sources, targets:
        Raw edge endpoint arrays; ids may be sparse and non-contiguous.
    symmetrize:
        Treat the input as undirected and add both directions, as the
        paper does for DBLP and Orkut.

    Returns
    -------
    (graph, report):
        The cleaned :class:`DiGraph` with dense ids, plus statistics.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    targets = np.asarray(targets, dtype=np.int64).ravel()
    edges_before = int(sources.shape[0])
    nodes_before = int(
        np.union1d(sources, targets).shape[0]
    ) if edges_before else 0

    if symmetrize:
        sources, targets = (
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
        )

    # Drop self-loops.
    not_loop = sources != targets
    self_loops_removed = int(sources.shape[0] - not_loop.sum())
    if symmetrize:
        # Each undirected self-loop was doubled above; count the original.
        self_loops_removed //= 2
    sources, targets = sources[not_loop], targets[not_loop]

    # Deduplicate.
    if sources.shape[0]:
        stacked = sources * (max(int(targets.max()), int(sources.max())) + 1) + targets
        _, unique_pos = np.unique(stacked, return_index=True)
        duplicates_removed = int(sources.shape[0] - unique_pos.shape[0])
        sources, targets = sources[unique_pos], targets[unique_pos]
    else:
        duplicates_removed = 0

    # Relabel: every endpoint that appears keeps existence; isolated
    # nodes simply never appear in the arrays, so compaction removes
    # them implicitly.
    node_ids = np.union1d(sources, targets)
    sources = np.searchsorted(node_ids, sources)
    targets = np.searchsorted(node_ids, targets)
    nodes_after = int(node_ids.shape[0])

    graph = from_edge_arrays(
        sources,
        targets,
        num_nodes=nodes_after,
        name=name,
        dedup=False,
        drop_self_loops=False,
        undirected_origin=symmetrize,
    )
    report = CleaningReport(
        nodes_before=nodes_before,
        nodes_after=nodes_after,
        edges_before=edges_before,
        edges_after=graph.num_edges,
        isolated_removed=max(nodes_before - nodes_after, 0),
        self_loops_removed=self_loops_removed,
        duplicates_removed=duplicates_removed,
    )
    return graph, report


def remove_isolated_nodes(graph: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """Drop nodes with neither in- nor out-edges.

    Returns the compacted graph and the array mapping new ids to the
    original ids (``old_id = mapping[new_id]``).
    """
    connected = (graph.out_degree > 0) | (graph.in_degree > 0)
    keep_ids = np.flatnonzero(connected)
    if keep_ids.shape[0] == graph.num_nodes:
        return graph, np.arange(graph.num_nodes)
    return relabel_nodes(graph, keep_ids), keep_ids


def relabel_nodes(graph: DiGraph, keep_ids: np.ndarray) -> DiGraph:
    """Induce the subgraph on ``keep_ids`` with compacted node ids.

    Edges with an endpoint outside ``keep_ids`` are dropped.
    """
    keep_ids = np.asarray(keep_ids, dtype=np.int64)
    new_id = np.full(graph.num_nodes, -1, dtype=np.int64)
    new_id[keep_ids] = np.arange(keep_ids.shape[0])
    sources, targets = graph.edge_array()
    mask = (new_id[sources] >= 0) & (new_id[targets] >= 0)
    return from_edge_arrays(
        new_id[sources[mask]],
        new_id[targets[mask]],
        num_nodes=keep_ids.shape[0],
        name=graph.name,
        dedup=False,
        drop_self_loops=False,
        undirected_origin=graph.undirected_origin,
    )
