"""Builders that assemble :class:`~repro.graph.digraph.DiGraph` objects.

The canonical entry point is :func:`from_edges`, which takes any
``(source, target)`` edge collection, sorts it into CSR order, optionally
deduplicates parallel edges and strips self-loops, and returns an
immutable graph.  :func:`from_adjacency` accepts a ready-made
``{node: [neighbors]}`` mapping, and :func:`empty_graph` /
:func:`complete_graph` / :func:`cycle_graph` / :func:`star_graph` supply
tiny canonical topologies used heavily by the test-suite.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.digraph import DiGraph

__all__ = [
    "from_edges",
    "from_edge_arrays",
    "from_adjacency",
    "empty_graph",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "paper_example_graph",
]


def from_edges(
    edges: Iterable[tuple[int, int]] | Sequence[tuple[int, int]],
    *,
    num_nodes: int | None = None,
    name: str = "",
    dedup: bool = True,
    drop_self_loops: bool = True,
    undirected_origin: bool = False,
) -> DiGraph:
    """Build a graph from an iterable of ``(source, target)`` pairs.

    Parameters
    ----------
    edges:
        Directed edges.  Node ids must be non-negative integers.
    num_nodes:
        Total node count.  Defaults to ``max(node id) + 1``; pass it
        explicitly to include trailing isolated nodes.
    dedup:
        Remove parallel (duplicate) edges, matching the cleaning step
        in the paper's Section 8.
    drop_self_loops:
        Remove ``(v, v)`` edges.  The paper's random-walk semantics make
        self-loops legal, so this is optional; the cleaning pipeline
        drops them by default for parity with SNAP preprocessing.
    """
    edge_list = list(edges)
    if not edge_list:
        return empty_graph(num_nodes or 0, name=name)
    arr = np.asarray(edge_list, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(
            f"edges must be (source, target) pairs; got array shape {arr.shape}"
        )
    return from_edge_arrays(
        arr[:, 0],
        arr[:, 1],
        num_nodes=num_nodes,
        name=name,
        dedup=dedup,
        drop_self_loops=drop_self_loops,
        undirected_origin=undirected_origin,
    )


def from_edge_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    num_nodes: int | None = None,
    name: str = "",
    dedup: bool = True,
    drop_self_loops: bool = True,
    undirected_origin: bool = False,
) -> DiGraph:
    """Vectorised counterpart of :func:`from_edges` for NumPy arrays."""
    sources = np.asarray(sources, dtype=np.int64).ravel()
    targets = np.asarray(targets, dtype=np.int64).ravel()
    if sources.shape[0] != targets.shape[0]:
        raise GraphFormatError(
            f"sources ({sources.shape[0]}) and targets ({targets.shape[0]}) "
            "must have the same length"
        )
    if sources.shape[0] and (sources.min() < 0 or targets.min() < 0):
        raise GraphFormatError("node ids must be non-negative")

    if num_nodes is None:
        num_nodes = int(max(sources.max(initial=-1), targets.max(initial=-1)) + 1)
    elif sources.shape[0] and max(sources.max(), targets.max()) >= num_nodes:
        raise GraphFormatError(
            f"edge endpoint exceeds num_nodes={num_nodes}"
        )

    if drop_self_loops:
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]

    # Sort into CSR order: primary key source, secondary key target, so
    # each adjacency list comes out sorted (binary-searchable).
    order = np.lexsort((targets, sources))
    sources, targets = sources[order], targets[order]

    if dedup and sources.shape[0]:
        keep = np.empty(sources.shape[0], dtype=bool)
        keep[0] = True
        np.logical_or(
            sources[1:] != sources[:-1],
            targets[1:] != targets[:-1],
            out=keep[1:],
        )
        sources, targets = sources[keep], targets[keep]

    degree = np.bincount(sources, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degree, out=indptr[1:])
    return DiGraph(
        indptr,
        targets.astype(np.int32),
        name=name,
        undirected_origin=undirected_origin,
        validate=False,
    )


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]],
    *,
    num_nodes: int | None = None,
    name: str = "",
) -> DiGraph:
    """Build a graph from a ``{node: [out-neighbors]}`` mapping."""
    edges: list[tuple[int, int]] = []
    for source, neighbors in adjacency.items():
        for target in neighbors:
            edges.append((int(source), int(target)))
    if num_nodes is None and adjacency:
        num_nodes = max(
            max(adjacency, default=-1),
            max((t for _, t in edges), default=-1),
        ) + 1
    return from_edges(edges, num_nodes=num_nodes, name=name, dedup=False)


def empty_graph(num_nodes: int, *, name: str = "") -> DiGraph:
    """A graph with ``num_nodes`` nodes and no edges."""
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    return DiGraph(indptr, np.empty(0, dtype=np.int32), name=name, validate=False)


def complete_graph(num_nodes: int, *, name: str = "complete") -> DiGraph:
    """The complete directed graph without self-loops."""
    if num_nodes <= 0:
        return empty_graph(0, name=name)
    sources = np.repeat(np.arange(num_nodes), num_nodes - 1)
    targets = np.concatenate(
        [np.delete(np.arange(num_nodes), v) for v in range(num_nodes)]
    ) if num_nodes > 1 else np.empty(0, dtype=np.int64)
    return from_edge_arrays(sources, targets, num_nodes=num_nodes, name=name)


def cycle_graph(num_nodes: int, *, name: str = "cycle") -> DiGraph:
    """The directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if num_nodes <= 0:
        return empty_graph(0, name=name)
    nodes = np.arange(num_nodes)
    return from_edge_arrays(
        nodes, np.roll(nodes, -1), num_nodes=num_nodes, name=name,
        drop_self_loops=num_nodes > 1,
    )


def star_graph(num_leaves: int, *, bidirectional: bool = True, name: str = "star") -> DiGraph:
    """A hub (node 0) connected to ``num_leaves`` leaves.

    With ``bidirectional=False`` the leaves are dead ends, which makes
    this the canonical fixture for dead-end-policy tests.
    """
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    if bidirectional:
        sources = np.concatenate([hub, leaves])
        targets = np.concatenate([leaves, hub])
    else:
        sources, targets = hub, leaves
    return from_edge_arrays(
        sources, targets, num_nodes=num_leaves + 1, name=name
    )


def paper_example_graph() -> DiGraph:
    """The 5-node example of the paper's Figure 1.

    Nodes are ``v1..v5`` mapped to ids ``0..4``.  Its transition matrix
    is printed in Figure 1 and its Forward-Push traces in Figures 2-3;
    the unit tests replay those traces number for number.
    """
    adjacency = {
        0: [1, 2],          # v1 -> v2, v3
        1: [0, 2, 3, 4],    # v2 -> v1, v3, v4, v5
        2: [1, 3],          # v3 -> v2, v4
        3: [0, 1, 2],       # v4 -> v1, v2, v3
        4: [1, 2],          # v5 -> v2, v3
    }
    return from_adjacency(adjacency, num_nodes=5, name="paper-example")
