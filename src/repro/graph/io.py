"""Graph readers and writers.

Two formats are supported:

* **SNAP-style edge lists** (the format of the datasets in the paper's
  Table 1): one ``source target`` pair per line, ``#`` comments,
  whitespace-separated, arbitrary node ids.  Reading runs the full
  cleaning pipeline of :mod:`repro.graph.cleaning` so the resulting
  graph matches the paper's preprocessing.
* **Binary cache** (``.npz``): the CSR arrays verbatim, for fast reload
  of generated benchmark datasets.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.cleaning import CleaningReport, clean
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]


def parse_edge_list(
    text: str,
    *,
    symmetrize: bool = False,
    name: str = "",
) -> tuple[DiGraph, CleaningReport]:
    """Parse a SNAP-style edge list from a string.

    Lines starting with ``#`` (or ``%``, used by some mirrors) are
    comments; blank lines are skipped; each remaining line must contain
    exactly two integer tokens.
    """
    sources: list[int] = []
    targets: list[int] = []
    for lineno, raw_line in enumerate(_io.StringIO(text), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        tokens = line.split()
        if len(tokens) != 2:
            raise GraphFormatError(
                f"line {lineno}: expected 'source target', got {line!r}"
            )
        try:
            source, target = int(tokens[0]), int(tokens[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer node id in {line!r}"
            ) from exc
        if source < 0 or target < 0:
            raise GraphFormatError(
                f"line {lineno}: negative node id in {line!r}"
            )
        sources.append(source)
        targets.append(target)
    return clean(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        symmetrize=symmetrize,
        name=name,
    )


def read_edge_list(
    path: str | Path,
    *,
    symmetrize: bool = False,
    name: str | None = None,
) -> tuple[DiGraph, CleaningReport]:
    """Read and clean a SNAP-style edge-list file."""
    path = Path(path)
    if name is None:
        name = path.stem
    return parse_edge_list(
        path.read_text(), symmetrize=symmetrize, name=name
    )


def write_edge_list(graph: DiGraph, path: str | Path) -> None:
    """Write the graph as a SNAP-style edge list with a header comment."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# repro graph {graph.name!r}\n")
        handle.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        sources, targets = graph.edge_array()
        for source, target in zip(sources.tolist(), targets.tolist()):
            handle.write(f"{source}\t{target}\n")


def save_npz(graph: DiGraph, path: str | Path) -> None:
    """Save the CSR arrays to a compressed ``.npz`` cache file."""
    np.savez_compressed(
        Path(path),
        out_indptr=graph.out_indptr,
        out_indices=graph.out_indices,
        name=np.array(graph.name),
        undirected_origin=np.array(graph.undirected_origin),
    )


def load_npz(path: str | Path) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            return DiGraph(
                data["out_indptr"],
                data["out_indices"],
                name=str(data["name"]),
                undirected_origin=bool(data["undirected_origin"]),
            )
    except (KeyError, OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot load graph cache {path}: {exc}") from exc
