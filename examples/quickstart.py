#!/usr/bin/env python
"""Quickstart: serve SSPPR queries through one :class:`PPREngine`.

Run with::

    python examples/quickstart.py

Loads the DBLP analog dataset, constructs one engine for it, and
answers queries through the unified API: a high-precision PowerPush
query, an approximate SpeedPPR query served from the engine's cached
eps-independent walk index, a batch of Monte-Carlo queries, and a
certified top-k ranking.  The direct per-algorithm functions still
exist, but the engine is the production front door: expensive
per-graph state is built once and reused by every query.
"""

from __future__ import annotations

from repro import (
    PPREngine,
    compute_stats,
    l1_error,
    load_dataset,
    max_relative_error,
)


def main() -> None:
    graph = load_dataset("dblp-s")
    stats = compute_stats(graph)
    print(f"dataset : {stats.name} (analog of DBLP)")
    print(f"nodes   : {stats.num_nodes}")
    print(f"edges   : {stats.num_edges}")
    print(f"density : {stats.average_degree:.2f} (paper: 6.62)")
    print()

    engine = PPREngine(graph, alpha=0.2, seed=0)
    source = 42

    # ------------------------------------------------------------------
    # High-precision query: ||estimate - pi_s||_1 <= 1e-8, guaranteed.
    # ------------------------------------------------------------------
    exact = engine.query(source, method="powerpush", l1_threshold=1e-8)
    print(f"PowerPush finished in {exact.seconds * 1000:.1f} ms")
    print(f"  guaranteed l1-error (= residue mass): {exact.r_sum:.2e}")
    print(f"  push operations: {exact.counters.pushes}")
    print(f"  residue updates: {exact.counters.residue_updates}")
    print("  top-5 nodes by PPR:")
    for rank, (node, score) in enumerate(exact.top_k(5), start=1):
        print(f"    #{rank} node {node:<6d} ppr = {score:.6f}")
    print()

    # ------------------------------------------------------------------
    # Approximate query: relative error <= eps for pi(s,v) >= 1/n, whp.
    # The first SpeedPPR query builds the eps-independent walk index;
    # every later query — at ANY epsilon — reuses it.
    # ------------------------------------------------------------------
    approx = engine.query(source, method="speedppr", epsilon=0.2)
    print(
        f"SpeedPPR finished in {approx.seconds * 1000:.1f} ms "
        f"({approx.method})"
    )
    print(f"  random walks used: {approx.counters.random_walks}")
    print(f"  (index holds at most m = {graph.num_edges} walks for ANY eps)")
    engine.query(source, method="speedppr", epsilon=0.1)
    print(
        f"  walk-index builds after a second query: "
        f"{engine.index_builds['walk']}"
    )

    # Measure the realised quality against the high-precision answer.
    mu = 1.0 / graph.num_nodes
    rel = max_relative_error(approx.estimate, exact.estimate, mu=mu)
    print(f"  realised max relative error (mu = 1/n): {rel:.4f}")
    print(f"  realised l1-error: {l1_error(approx.estimate, exact.estimate):.2e}")

    overlap = {node for node, _ in exact.top_k(10)} & {
        node for node, _ in approx.top_k(10)
    }
    print(f"  top-10 overlap with exact answer: {len(overlap)}/10")
    print()

    # ------------------------------------------------------------------
    # Batch queries and certified top-k through the same front door.
    # ------------------------------------------------------------------
    batch = engine.batch_query([0, 1, 2, 3], method="montecarlo", epsilon=0.5)
    print(
        f"batch_query answered {len(batch)} Monte-Carlo queries "
        f"(sources {[r.source for r in batch]})"
    )

    top = engine.top_k(source, 5)
    print(f"certified top-5 (certificate holds: {top.certified}):")
    for rank, (node, score) in enumerate(top.ranking, start=1):
        print(f"    #{rank} node {node:<6d} ppr = {score:.6f}")
    print()
    print("engine instrumentation:")
    print(engine.stats.render())


if __name__ == "__main__":
    main()
