#!/usr/bin/env python
"""Quickstart: answer high-precision and approximate SSPPR queries.

Run with::

    python examples/quickstart.py

Loads the DBLP analog dataset, answers one high-precision query with
PowerPush (the paper's Algorithm 3) and one approximate query with
SpeedPPR (Algorithm 4), and cross-checks both against each other.
"""

from __future__ import annotations

import numpy as np

from repro import (
    compute_stats,
    l1_error,
    load_dataset,
    max_relative_error,
    power_push,
    speed_ppr,
)


def main() -> None:
    graph = load_dataset("dblp-s")
    stats = compute_stats(graph)
    print(f"dataset : {stats.name} (analog of DBLP)")
    print(f"nodes   : {stats.num_nodes}")
    print(f"edges   : {stats.num_edges}")
    print(f"density : {stats.average_degree:.2f} (paper: 6.62)")
    print()

    source = 42

    # ------------------------------------------------------------------
    # High-precision query: ||estimate - pi_s||_1 <= 1e-8, guaranteed.
    # ------------------------------------------------------------------
    exact = power_push(graph, source, alpha=0.2, l1_threshold=1e-8)
    print(f"PowerPush finished in {exact.seconds * 1000:.1f} ms")
    print(f"  guaranteed l1-error (= residue mass): {exact.r_sum:.2e}")
    print(f"  push operations: {exact.counters.pushes}")
    print(f"  residue updates: {exact.counters.residue_updates}")
    print("  top-5 nodes by PPR:")
    for rank, (node, score) in enumerate(exact.top_k(5), start=1):
        print(f"    #{rank} node {node:<6d} ppr = {score:.6f}")
    print()

    # ------------------------------------------------------------------
    # Approximate query: relative error <= eps for pi(s,v) >= 1/n, whp.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    approx = speed_ppr(graph, source, alpha=0.2, epsilon=0.2, rng=rng)
    print(f"SpeedPPR finished in {approx.seconds * 1000:.1f} ms")
    print(f"  random walks used: {approx.counters.random_walks}")
    print(f"  (at most m = {graph.num_edges} for ANY epsilon)")

    # Measure the realised quality against the high-precision answer.
    mu = 1.0 / graph.num_nodes
    rel = max_relative_error(approx.estimate, exact.estimate, mu=mu)
    print(f"  realised max relative error (mu = 1/n): {rel:.4f}")
    print(f"  realised l1-error: {l1_error(approx.estimate, exact.estimate):.2e}")

    overlap = {node for node, _ in exact.top_k(10)} & {
        node for node, _ in approx.top_k(10)
    }
    print(f"  top-10 overlap with exact answer: {len(overlap)}/10")


if __name__ == "__main__":
    main()
