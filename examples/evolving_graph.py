#!/usr/bin/env python
"""Evolving-graph demo: serve PPR while the graph changes under you.

Run with::

    python examples/evolving_graph.py

A social-style R-MAT graph receives a stream of edge insertions and
deletions — follows and unfollows — while one
:class:`~repro.api.PPREngine` keeps serving.  The demo shows the three
pieces of the dynamic-graph API:

* ``DynamicGraph`` — a versioned delta overlay on an immutable CSR
  snapshot, with ``compact()`` to merge deltas back in;
* ``engine.apply_updates`` / ``engine.track`` — every cached index is
  stamped with the graph version it was built at and invalidated when
  the version moves, while tracked sources are *repaired* via the push
  invariant's degree-scaled residue corrections;
* ``engine.query(s, method="incremental")`` — a certified refresh
  whose cost is governed by the perturbation, not the graph.
"""

from __future__ import annotations

import numpy as np

from repro import DynamicGraph, PPREngine, rmat_digraph, sample_edge_update
from repro.core.powerpush import power_push


def main() -> None:
    rng = np.random.default_rng(42)
    base = rmat_digraph(11, 16_000, rng=rng, name="social")
    dynamic = DynamicGraph(base)
    engine = PPREngine(dynamic, alpha=0.2, seed=42)
    source = 7

    print(f"graph   : {base.name} (n={base.num_nodes}, m={base.num_edges})")
    print(f"version : {dynamic.version}")
    print()

    # ------------------------------------------------------------------
    # Track a source: one from-scratch solve, then repairs only.
    # ------------------------------------------------------------------
    tracker = engine.track(source, l1_threshold=1e-8)
    first = engine.query(source, method="incremental")
    print(f"tracked source {source}: certified bound {tracker.error_bound:.2e}")
    print("  top-5 before updates:")
    for rank, (node, score) in enumerate(first.top_k(5), start=1):
        print(f"    #{rank} node {node:<6d} ppr = {score:.6f}")
    print()

    # ------------------------------------------------------------------
    # Stream 50 random follows/unfollows through the engine.
    # ------------------------------------------------------------------
    for _ in range(50):
        engine.apply_updates([sample_edge_update(dynamic, rng)])
    print(
        f"applied 50 updates -> version {dynamic.version}, "
        f"m={dynamic.num_edges}, pending deltas={dynamic.pending_updates}"
    )

    refreshed = engine.query(source, method="incremental")
    scratch = power_push(
        dynamic.snapshot(), source, alpha=0.2, l1_threshold=1e-8
    )
    gap = float(np.abs(refreshed.estimate - scratch.estimate).sum())
    print(f"incremental refresh: {refreshed.counters.residue_updates} residue updates")
    print(f"from-scratch solve : {scratch.counters.residue_updates} residue updates")
    print(
        f"  -> {refreshed.counters.residue_updates / scratch.counters.residue_updates:.2f}x "
        f"the work, answers agree to {gap:.2e} (certified)"
    )
    print("  top-5 after updates:")
    for rank, (node, score) in enumerate(refreshed.top_k(5), start=1):
        print(f"    #{rank} node {node:<6d} ppr = {score:.6f}")
    print()

    # ------------------------------------------------------------------
    # Version-stamped caches: indexes never serve a stale graph.
    # ------------------------------------------------------------------
    engine.query(source, method="speedppr", epsilon=0.3)
    print(f"walk-index builds so far        : {engine.index_builds['walk']}")
    engine.apply_updates([sample_edge_update(dynamic, rng)])
    engine.query(source, method="speedppr", epsilon=0.3)
    print(f"after one more update + query   : {engine.index_builds['walk']}")
    print(f"stale indexes invalidated       : {engine.index_invalidations['walk']}")
    print()

    # Compaction merges the overlay into a fresh CSR base; the logical
    # graph (and every cached artefact's validity) is unchanged.
    dynamic.compact()
    print(f"after compact(): pending deltas = {dynamic.pending_updates}")
    print()
    print("engine instrumentation:")
    print(engine.stats.render())


if __name__ == "__main__":
    main()
