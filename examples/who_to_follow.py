#!/usr/bin/env python
"""Who-to-Follow: PPR-based recommendation on a social-network analog.

The paper's introduction motivates SSPPR with Twitter's Who-to-Follow:
rank candidate accounts for a user by their Personalized PageRank.
This example runs the full recommendation loop on the Pokec analog
through one :class:`PPREngine` — the production-shaped configuration:

1. pick a user,
2. compute their PPR vector with SpeedPPR, served from the engine's
   eps-independent walk index (built lazily on the first query and
   shared by all users),
3. filter out the user and the accounts they already follow,
4. recommend the top remaining accounts,
5. sanity-check the ranking against the exact high-precision answer
   from the same engine.
"""

from __future__ import annotations

import numpy as np

from repro import PPREngine, load_dataset, precision_at_k


def recommend(engine: PPREngine, user: int, k: int = 10) -> list[tuple[int, float]]:
    """Top-k accounts for ``user`` by PPR, excluding existing follows."""
    result = engine.query(user, method="speedppr", epsilon=0.2)
    graph = engine.graph
    scores = result.estimate.copy()
    scores[user] = 0.0
    scores[graph.out_neighbors(user)] = 0.0  # already followed
    order = np.argsort(-scores, kind="stable")[:k]
    return [(int(v), float(scores[v])) for v in order if scores[v] > 0]


def main() -> None:
    graph = load_dataset("pokec-s")
    print(
        f"social graph: {graph.num_nodes} users, "
        f"{graph.num_edges} follow edges (Pokec analog)"
    )

    # One engine serves every user's query; its walk index is the
    # one-off preprocessing shared by all of them — at most one
    # pre-computed walk per edge, independent of the accuracy target.
    engine = PPREngine(graph, alpha=0.2, seed=7)
    index = engine.walk_index()
    print(
        f"walk index: {index.num_walks} walks, "
        f"{index.size_bytes / 1e6:.1f} MB, built in "
        f"{index.construction_seconds:.2f} s\n"
    )

    # Pick sample users relative to graph size so the script works at
    # any REPRO_BENCH_SCALE.
    sample_users = (11, graph.num_nodes // 6, graph.num_nodes - 7)
    for user in sample_users:
        followed = graph.out_neighbors(user)
        print(
            f"user {user} (follows {followed.shape[0]} accounts) — "
            "recommendations:"
        )
        for rank, (candidate, score) in enumerate(
            recommend(engine, user, k=5), start=1
        ):
            print(f"  #{rank} account {candidate:<6d} score = {score:.6f}")

        # Quality check: how much of the *exact* top-5 did we recover?
        exact = engine.query(user, method="powerpush", l1_threshold=1e-10)
        exact_scores = exact.estimate.copy()
        exact_scores[user] = 0.0
        exact_scores[followed] = 0.0
        approx_scores = np.zeros_like(exact_scores)
        for candidate, score in recommend(engine, user, k=50):
            approx_scores[candidate] = score
        hit_rate = precision_at_k(approx_scores, exact_scores, 5)
        print(f"  precision@5 vs exact PPR ranking: {hit_rate:.2f}\n")

    print(
        f"walk-index builds across {engine.stats.queries} queries: "
        f"{engine.index_builds['walk']}"
    )


if __name__ == "__main__":
    main()
