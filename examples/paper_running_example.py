#!/usr/bin/env python
"""Replay the paper's running examples (Figures 1-3) step by step.

This script executes Forward Push and SimFwdPush on the exact 5-node
graph of Figure 1 with the exact parameters of Figures 2 and 3, and
prints each intermediate state so the output can be compared with the
figures line by line.  The same numbers are asserted in
``tests/test_paper_traces.py``.
"""

from __future__ import annotations

import numpy as np

from repro import paper_example_graph
from repro.core.kernels import frontier_push
from repro.core.residues import PushState


def show(state: PushState, label: str) -> None:
    names = [f"v{i + 1}" for i in range(5)]
    reserve = "  ".join(
        f"{name}={value:.3f}" for name, value in zip(names, state.reserve)
    )
    residue = "  ".join(
        f"{name}={value:.3f}" for name, value in zip(names, state.residue)
    )
    print(f"{label}")
    print(f"  reserve (pi_hat): {reserve}")
    print(f"  residue (r)     : {residue}")
    print(f"  r_sum = guaranteed l1-error = {state.residue.sum():.3f}\n")


def figure2() -> None:
    print("=" * 68)
    print("Figure 2 — Forward Push, s = v1, alpha = 0.2, r_max = 0.099")
    print("=" * 68)
    graph = paper_example_graph()
    r_max = 0.099
    state = PushState(graph, 0, alpha=0.2)
    show(state, "initial state: r(s, v1) = 1")

    for node, name in ((0, "v1"), (2, "v3"), (1, "v2")):
        active = [f"v{v + 1}" for v in state.active_nodes(r_max)]
        print(f"active nodes: {active}; paper pushes {name}")
        state.push(node)
        show(state, f"after push on {name}")

    assert state.active_nodes(r_max).shape[0] == 0
    print("no active node remains -> FwdPush terminates (as in Figure 2)\n")


def figure3() -> None:
    print("=" * 68)
    print("Figure 3 — SimFwdPush (r_max = 0), s = v1, alpha = 0.2")
    print("=" * 68)
    graph = paper_example_graph()
    state = PushState(graph, 0, alpha=0.2)
    show(state, "iteration 0 (initial)")

    for iteration in (1, 2):
        frontier = np.flatnonzero(state.residue > 0)
        names = [f"v{v + 1}" for v in frontier]
        print(f"iteration {iteration}: simultaneous push on {names}")
        frontier_push(state, frontier)
        show(state, f"after iteration {iteration}")

    expected = np.array([0.08, 0.16, 0.08, 0.24, 0.08])
    assert np.allclose(state.residue, expected), "Figure 3 mismatch!"
    print("residues match Figure 3's r(2) exactly.")
    print(
        "Note: r_sum after iteration j is (1 - alpha)^j — "
        f"here 0.8^2 = {0.8 ** 2:.2f} (Lemma 4.1 / Eq. 6)."
    )


def main() -> None:
    figure2()
    figure3()


if __name__ == "__main__":
    main()
