#!/usr/bin/env python
"""Convergence race: PowItr vs FIFO-FwdPush vs PowerPush (Figures 5-6).

Runs the three high-precision solvers on the LiveJournal analog with
full instrumentation and renders the paper's two convergence views —
l1-error against wall-clock time and against the number of residue
updates — as ASCII charts.
"""

from __future__ import annotations

from repro import PPREngine, load_dataset
from repro.experiments.report import ascii_chart
from repro.instrumentation.tracing import ConvergenceTrace


def main() -> None:
    graph = load_dataset("lj-s")
    engine = PPREngine(graph, alpha=0.2)
    source = 123
    l1_threshold = min(1e-8, 1.0 / graph.num_edges)
    stride = 4 * graph.num_edges  # the paper samples every 4m updates
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges "
        f"(LiveJournal analog); lambda = {l1_threshold:.1e}\n"
    )

    # Registry aliases: any accepted spelling would do here.
    runs = (
        ("PowerPush", "powerpush"),
        ("PowItr", "powitr"),
        ("FIFO-FwdPush", "fifo-fwdpush"),
    )
    time_series = {}
    update_series = {}
    for name, method in runs:
        trace = ConvergenceTrace(stride=stride)
        result = engine.query(
            source, method=method, l1_threshold=l1_threshold, trace=trace
        )
        time_series[name] = trace.series_vs_time()
        xs, ys = trace.series_vs_updates()
        update_series[name] = ([float(x) for x in xs], ys)
        print(
            f"{name:>13s}: {result.seconds * 1000:7.1f} ms, "
            f"{result.counters.residue_updates:>12d} residue updates, "
            f"final error {result.r_sum:.2e}"
        )

    print()
    print(
        ascii_chart(
            time_series,
            title="Figure 5 view — l1-error vs seconds (log y)",
            x_label="seconds",
            y_label="l1-error",
        )
    )
    print()
    print(
        ascii_chart(
            update_series,
            title="Figure 6 view — l1-error vs residue updates (log y)",
            x_label="#updates",
            y_label="l1-error",
        )
    )
    print(
        "\nStraight lines confirm the O(m log(1/lambda)) behaviour "
        "(Theorem 4.3); PowerPush needs the fewest updates."
    )


if __name__ == "__main__":
    main()
