"""Serve concurrent PPR traffic: scheduler, cache, and live updates.

Walkthrough of :class:`repro.serving.EngineServer` — the thread-safe
front door the README "Serving" section describes:

1. a burst of concurrent queries coalesces into batched solves,
2. repeated sources answer from the versioned result cache,
3. an edge update invalidates the cache exactly at the version bump,
4. a small Zipfian loadtest compares served vs serial throughput.

Run with ``PYTHONPATH=src python examples/serve_traffic.py``.
"""

import numpy as np

from repro import (
    DynamicGraph,
    EngineServer,
    WorkloadGenerator,
    rmat_digraph,
    run_loadtest,
    sample_edge_update,
)

SEED = 7


def main() -> None:
    graph = DynamicGraph(
        rmat_digraph(10, 8_000, rng=np.random.default_rng(SEED), name="traffic")
    )
    print(f"serving {graph!r}")

    with EngineServer(graph, alpha=0.2, seed=SEED, window=0.002) as server:
        # -- 1. a concurrent burst: futures in, coalesced solves out --
        hot = [0, 1, 2, 0, 1, 0, 3, 0]  # skewed, like real traffic
        futures = [
            server.submit(s, "powerpush", l1_threshold=1e-7) for s in hot
        ]
        answers = [future.result() for future in futures]
        batched = max(a.batch_size for a in answers)
        print(
            f"burst of {len(hot)} requests over {len(set(hot))} sources "
            f"answered; largest coalesced batch: {batched}"
        )

        # -- 2. the cache serves the repeats ---------------------------
        again = server.query(0, "powerpush", l1_threshold=1e-7)
        print(
            f"repeat query: cache_hit={again.cache_hit} "
            f"(version {again.version})"
        )

        # -- 3. an update invalidates exactly at the version bump ------
        update = sample_edge_update(graph, np.random.default_rng(SEED + 1))
        version = server.apply_updates([update])
        fresh = server.query(0, "powerpush", l1_threshold=1e-7)
        print(
            f"after update -> version {version}: cache_hit="
            f"{fresh.cache_hit} (recomputed at version {fresh.version})"
        )
        stats = server.stats()
        print(
            f"server counters: {stats['requests']} requests, "
            f"cache invalidations {stats['cache']['invalidations']}, "
            f"batching factor {stats['scheduler']['batching_factor']:.2f}"
        )

    # -- 4. a measured Zipfian loadtest against the serial baseline ----
    def make_graph():
        return rmat_digraph(
            9, 4_000, rng=np.random.default_rng(SEED), name="loadtest"
        )

    workload = WorkloadGenerator(
        make_graph().num_nodes,
        num_sources=24,
        zipf_exponent=1.2,
        seed=SEED,
    ).generate(150)
    report = run_loadtest(
        make_graph,
        workload,
        method="powerpush",
        params={"l1_threshold": 1e-7},
        concurrency=4,
        seed=SEED,
    )
    print()
    print(report.render())


if __name__ == "__main__":
    main()
