"""Serve concurrent PPR traffic: scheduler, cache, and live updates.

Walkthrough of :class:`repro.serving.EngineServer` — the thread-safe
front door the README "Serving" section describes:

1. a burst of concurrent queries coalesces into batched solves,
2. repeated sources answer from the versioned result cache,
3. an edge update invalidates the cache exactly at the version bump,
4. a small Zipfian loadtest compares served vs serial throughput,
5. with ``--workers N``: the same traffic through a
   :class:`repro.serving.ShardedDispatcher` — N worker processes over
   one shared-memory graph image, byte-identical answers included.

Run with ``PYTHONPATH=src python examples/serve_traffic.py``
(add ``--workers 2`` for the sharded tier).
"""

import argparse

import numpy as np

from repro import (
    DynamicGraph,
    EngineServer,
    PPREngine,
    ShardedDispatcher,
    WorkloadGenerator,
    rmat_digraph,
    run_loadtest,
    sample_edge_update,
)

SEED = 7


def sharded_tour(graph: DynamicGraph, workers: int) -> None:
    """Section 5: the process-parallel tier over a shared graph image.

    The dispatcher exports the graph's CSR arrays into one
    shared-memory segment, forks ``workers`` processes that each map
    it zero-copy, and routes every query by consistent hashing on the
    source id — so repeats of a hot source always land on the shard
    whose cache already holds the answer.  Updates broadcast to every
    shard as a versioned barrier.  None of this machinery may change
    an answer: ``per_source_rng(seed, source)`` makes each result a
    pure function of ``(seed, source)``, so we check byte-identity
    against a single-process engine below.
    """
    print(f"\n-- sharded serving: {workers} worker processes --")
    reference = PPREngine(graph.snapshot(), alpha=0.2, seed=SEED)
    with ShardedDispatcher(
        graph, workers=workers, alpha=0.2, seed=SEED
    ) as dispatcher:
        hot = [0, 1, 2, 0, 1, 0, 3, 0]
        for source in sorted(set(hot)):
            served = dispatcher.query(source, "powerpush", l1_threshold=1e-7)
            expected = reference.query(source, "powerpush", l1_threshold=1e-7)
            identical = (
                served.result.estimate.tobytes()
                == expected.estimate.tobytes()
            )
            print(
                f"source {source} -> shard {served.worker} "
                f"(route {dispatcher.route(source)}), "
                f"byte-identical to single-process: {identical}"
            )
        repeat = dispatcher.query(0, "powerpush", l1_threshold=1e-7)
        print(
            f"repeat of source 0: cache_hit={repeat.cache_hit} on "
            f"shard {repeat.worker} (cache affinity)"
        )
        update = sample_edge_update(graph, np.random.default_rng(SEED + 2))
        version = dispatcher.apply_updates([update])
        print(f"update barrier: every shard now at version {version}")
        stats = dispatcher.stats()
        per_worker = ", ".join(
            f"w{wid}={w['cache']['hit_rate']:.0%}"
            for wid, w in sorted(stats["per_worker"].items())
        )
        print(
            f"aggregate hit rate {stats['cache']['hit_rate']:.0%} "
            f"(per shard: {per_worker})"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also tour the multi-process sharded dispatcher",
    )
    # parse_known_args, not parse_args: the example suite re-runs this
    # file under runpy with the test runner's argv still in place.
    args, _ = parser.parse_known_args()
    graph = DynamicGraph(
        rmat_digraph(10, 8_000, rng=np.random.default_rng(SEED), name="traffic")
    )
    print(f"serving {graph!r}")

    with EngineServer(graph, alpha=0.2, seed=SEED, window=0.002) as server:
        # -- 1. a concurrent burst: futures in, coalesced solves out --
        hot = [0, 1, 2, 0, 1, 0, 3, 0]  # skewed, like real traffic
        futures = [
            server.submit(s, "powerpush", l1_threshold=1e-7) for s in hot
        ]
        answers = [future.result() for future in futures]
        batched = max(a.batch_size for a in answers)
        print(
            f"burst of {len(hot)} requests over {len(set(hot))} sources "
            f"answered; largest coalesced batch: {batched}"
        )

        # -- 2. the cache serves the repeats ---------------------------
        again = server.query(0, "powerpush", l1_threshold=1e-7)
        print(
            f"repeat query: cache_hit={again.cache_hit} "
            f"(version {again.version})"
        )

        # -- 3. an update invalidates exactly at the version bump ------
        update = sample_edge_update(graph, np.random.default_rng(SEED + 1))
        version = server.apply_updates([update])
        fresh = server.query(0, "powerpush", l1_threshold=1e-7)
        print(
            f"after update -> version {version}: cache_hit="
            f"{fresh.cache_hit} (recomputed at version {fresh.version})"
        )
        stats = server.stats()
        print(
            f"server counters: {stats['requests']} requests, "
            f"cache invalidations {stats['cache']['invalidations']}, "
            f"batching factor {stats['scheduler']['batching_factor']:.2f}"
        )

    # -- 4. a measured Zipfian loadtest against the serial baseline ----
    def make_graph():
        return rmat_digraph(
            9, 4_000, rng=np.random.default_rng(SEED), name="loadtest"
        )

    workload = WorkloadGenerator(
        make_graph().num_nodes,
        num_sources=24,
        zipf_exponent=1.2,
        seed=SEED,
    ).generate(150)
    report = run_loadtest(
        make_graph,
        workload,
        method="powerpush",
        params={"l1_threshold": 1e-7},
        concurrency=4,
        seed=SEED,
    )
    print()
    print(report.render())

    # -- 5. optionally, the process-parallel tier ----------------------
    if args.workers:
        sharded_tour(graph, args.workers)


if __name__ == "__main__":
    main()
