#!/usr/bin/env python
"""PPR features for graph embeddings (HOPE / STRAP / VERSE style).

The paper's introduction lists graph representation learning as a
driving application: embedding methods like STRAP factorise a matrix
of PPR vectors, which requires one SSPPR query per node — exactly the
workload where a fast solver with an eps-independent index pays off.

This example builds a small PPR-proximity matrix on the Web-Stanford
analog with a :class:`PPREngine` batch query (SpeedPPR served from the
engine's cached eps-independent index), factorises it with a truncated
SVD (the HOPE construction), and shows that nearby nodes in the
embedding space are PPR-similar.
"""

from __future__ import annotations

import numpy as np

from repro import PPREngine, load_dataset


def ppr_matrix(engine: PPREngine, nodes) -> np.ndarray:
    """Stack the PPR vectors of ``nodes`` into a matrix (rows = sources).

    One batch query: the engine builds its walk index on the first
    source and serves every other one from it.
    """
    results = engine.batch_query([int(v) for v in nodes], method="speedppr", epsilon=0.3)
    return np.vstack([result.estimate for result in results])


def main() -> None:
    graph = load_dataset("webst-s")
    print(
        f"web graph: {graph.num_nodes} pages, {graph.num_edges} links "
        "(Web-Stanford analog)"
    )

    engine = PPREngine(graph, alpha=0.2, seed=3)

    # Sample a node subset (full STRAP would use all nodes).
    rng = np.random.default_rng(3)
    sample = rng.choice(graph.num_nodes, size=64, replace=False)
    matrix = ppr_matrix(engine, sample)
    print(
        f"computed {matrix.shape[0]} PPR vectors "
        f"({matrix.shape[0] * matrix.shape[1]} proximities)"
    )

    # HOPE-style embedding: truncated SVD of the proximity matrix.
    # log-transform stabilises the heavy-tailed PPR values.
    transformed = np.log1p(matrix / (1.0 / graph.num_nodes))
    u, s, _ = np.linalg.svd(transformed, full_matrices=False)
    dim = 16
    embedding = u[:, :dim] * np.sqrt(s[:dim])
    print(f"embedding: {embedding.shape[0]} nodes x {dim} dimensions")
    explained = float((s[:dim] ** 2).sum() / (s**2).sum())
    print(f"variance explained by {dim} dims: {explained:.1%}\n")

    # Nearest neighbour in embedding space should be PPR-similar.
    print("sample node -> nearest embedded neighbour (cosine):")
    normalised = embedding / np.linalg.norm(embedding, axis=1, keepdims=True)
    cosine = normalised @ normalised.T
    np.fill_diagonal(cosine, -1.0)
    agreements = 0
    shown = 0
    for row in range(matrix.shape[0]):
        buddy = int(np.argmax(cosine[row]))
        # PPR-similarity of the pair vs a random pair.
        ppr_sim = float(np.minimum(matrix[row], matrix[buddy]).sum())
        random_other = (row + 17) % matrix.shape[0]
        ppr_rand = float(np.minimum(matrix[row], matrix[random_other]).sum())
        if ppr_sim >= ppr_rand:
            agreements += 1
        if shown < 5:
            print(
                f"  node {int(sample[row]):<6d} ~ node "
                f"{int(sample[buddy]):<6d} cos={cosine[row, buddy]:.3f} "
                f"ppr-overlap={ppr_sim:.4f} (random pair: {ppr_rand:.4f})"
            )
            shown += 1
    print(
        f"\nembedding neighbour is PPR-closer than a random pair for "
        f"{agreements}/{matrix.shape[0]} nodes"
    )


if __name__ == "__main__":
    main()
