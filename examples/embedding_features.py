#!/usr/bin/env python
"""PPR features for graph embeddings (HOPE / STRAP / VERSE style).

The paper's introduction lists graph representation learning as a
driving application: embedding methods like STRAP factorise a matrix
of PPR vectors, which requires one SSPPR query per node — exactly the
workload where a fast solver with an eps-independent index pays off.

This example builds a small PPR-proximity matrix on the Web-Stanford
analog with SpeedPPR-Index, factorises it with a truncated SVD (the
HOPE construction), and shows that nearby nodes in the embedding space
are PPR-similar.
"""

from __future__ import annotations

import numpy as np

from repro import (
    build_walk_index,
    load_dataset,
    speed_ppr,
    speedppr_walk_counts,
)


def ppr_matrix(graph, nodes, index) -> np.ndarray:
    """Stack the PPR vectors of ``nodes`` into a matrix (rows = sources)."""
    rows = []
    for node in nodes:
        result = speed_ppr(graph, int(node), epsilon=0.3, walk_index=index)
        rows.append(result.estimate)
    return np.vstack(rows)


def main() -> None:
    graph = load_dataset("webst-s")
    print(
        f"web graph: {graph.num_nodes} pages, {graph.num_edges} links "
        "(Web-Stanford analog)"
    )

    rng = np.random.default_rng(3)
    index = build_walk_index(
        graph, speedppr_walk_counts(graph), rng=rng, policy="speedppr"
    )

    # Sample a node subset (full STRAP would use all nodes).
    sample = rng.choice(graph.num_nodes, size=64, replace=False)
    matrix = ppr_matrix(graph, sample, index)
    print(
        f"computed {matrix.shape[0]} PPR vectors "
        f"({matrix.shape[0] * matrix.shape[1]} proximities)"
    )

    # HOPE-style embedding: truncated SVD of the proximity matrix.
    # log-transform stabilises the heavy-tailed PPR values.
    transformed = np.log1p(matrix / (1.0 / graph.num_nodes))
    u, s, _ = np.linalg.svd(transformed, full_matrices=False)
    dim = 16
    embedding = u[:, :dim] * np.sqrt(s[:dim])
    print(f"embedding: {embedding.shape[0]} nodes x {dim} dimensions")
    explained = float((s[:dim] ** 2).sum() / (s**2).sum())
    print(f"variance explained by {dim} dims: {explained:.1%}\n")

    # Nearest neighbour in embedding space should be PPR-similar.
    print("sample node -> nearest embedded neighbour (cosine):")
    normalised = embedding / np.linalg.norm(embedding, axis=1, keepdims=True)
    cosine = normalised @ normalised.T
    np.fill_diagonal(cosine, -1.0)
    agreements = 0
    shown = 0
    for row in range(matrix.shape[0]):
        buddy = int(np.argmax(cosine[row]))
        # PPR-similarity of the pair vs a random pair.
        ppr_sim = float(np.minimum(matrix[row], matrix[buddy]).sum())
        random_other = (row + 17) % matrix.shape[0]
        ppr_rand = float(np.minimum(matrix[row], matrix[random_other]).sum())
        if ppr_sim >= ppr_rand:
            agreements += 1
        if shown < 5:
            print(
                f"  node {int(sample[row]):<6d} ~ node "
                f"{int(sample[buddy]):<6d} cos={cosine[row, buddy]:.3f} "
                f"ppr-overlap={ppr_sim:.4f} (random pair: {ppr_rand:.4f})"
            )
            shown += 1
    print(
        f"\nembedding neighbour is PPR-closer than a random pair for "
        f"{agreements}/{matrix.shape[0]} nodes"
    )


if __name__ == "__main__":
    main()
