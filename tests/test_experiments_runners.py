"""Integration tests for the experiment runners (tiny configuration).

Each runner executes end-to-end on one very small dataset and the
result objects are checked for the *shape properties* the paper
reports (see DESIGN.md's expected-shapes list).  These tests double as
the regression net for the benchmark harness.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.ablations import (
    run_powerpush_ablation,
    run_scheduling_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import experiment_ids, run_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.workspace import Workspace


@pytest.fixture(scope="module")
def tiny_workspace(tmp_path_factory):
    """One small dataset, two sources, two eps values."""
    import os

    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("ds-cache"))
    )
    config = ExperimentConfig(
        datasets=("dblp-s",),
        num_sources=2,
        epsilons=(0.5, 0.2),
        seed=7,
    )
    return Workspace(config)


class TestTable1:
    def test_rows_and_render(self, tiny_workspace):
        result = run_table1(tiny_workspace)
        assert set(result.stats) == {"dblp-s"}
        text = result.render()
        assert "dblp-s" in text and "DBLP" in text

    def test_density_close_to_paper(self, tiny_workspace):
        result = run_table1(tiny_workspace)
        stat = result.stats["dblp-s"]
        assert stat.average_degree == pytest.approx(6.62, rel=0.2)


class TestTable2:
    def test_shapes(self, tiny_workspace):
        result = run_table2(tiny_workspace)
        speed = result.get("dblp-s", "SpeedPPR")
        fora_report = result.get("dblp-s", "FORA")
        bepi = result.get("dblp-s", "BePI")
        # Paper shape: SpeedPPR index smallest; FORA+ larger; BePI's
        # matrices the largest.
        assert speed.size_bytes < fora_report.size_bytes
        assert speed.size_bytes < bepi.size_bytes
        assert speed.construction_seconds < bepi.construction_seconds
        assert "dblp-s" in result.render()

    def test_missing_key_raises(self, tiny_workspace):
        result = run_table2(tiny_workspace)
        with pytest.raises(KeyError):
            result.get("dblp-s", "Unknown")


class TestFig4:
    def test_all_methods_timed(self, tiny_workspace):
        result = run_fig4(tiny_workspace)
        by_method = result.seconds["dblp-s"]
        assert set(by_method) == {
            "PowerPush",
            "BePI",
            "FIFO-FwdPush",
            "PowItr",
            "PowerPush-Block",
        }
        assert all(v > 0 for v in by_method.values())
        assert "1.0x" in result.render()  # PowerPush's own ratio


class TestFig5:
    def test_series_shapes(self, tiny_workspace):
        result = run_fig5(tiny_workspace)
        curves = result.series["dblp-s"]
        assert set(curves) == {
            "PowerPush",
            "PowItr",
            "FIFO-FwdPush",
            "BePI",
        }
        for name, (xs, ys) in curves.items():
            assert len(xs) == len(ys) > 0, name
        # Push methods reach the 1e-8-ish threshold.
        assert min(curves["PowerPush"][1]) <= 1e-7
        assert "Figure 5" in result.render()


class TestFig6:
    def test_updates_ordering(self, tiny_workspace):
        result = run_fig6(tiny_workspace)
        curves = result.series["dblp-s"]
        assert "BePI" not in curves  # excluded, as in the paper
        reach = result.updates_to_reach("dblp-s", 1e-6)
        # PowerPush needs no more updates than PowItr (paper Figure 6).
        assert reach["PowerPush"] <= reach["PowItr"]
        assert "Figure 6" in result.render()


class TestFig7:
    def test_methods_and_monotonicity(self, tiny_workspace):
        result = run_fig7(tiny_workspace)
        by_method = result.seconds["dblp-s"]
        assert len(by_method["SpeedPPR"]) == 2  # two eps values
        text = result.render()
        assert "SpeedPPR-Index" in text
        # PowerPush is eps-independent: its two timings are similar.
        pp = by_method["PowerPush"]
        assert pp[0] == pytest.approx(pp[1], rel=2.0)


class TestFig8:
    def test_errors_positive_and_improving(self, tiny_workspace):
        result = run_fig8(tiny_workspace)
        by_method = result.errors["dblp-s"]
        for method, errors in by_method.items():
            assert all(e >= 0 for e in errors), method
        # Tighter eps gives a no-worse l1-error for SpeedPPR.
        speed = by_method["SpeedPPR"]
        assert speed[-1] <= speed[0] * 1.5
        assert "Figure 8" in result.render()


class TestAblations:
    def test_powerpush_grid(self, tiny_workspace):
        result = run_powerpush_ablation(tiny_workspace)
        assert len(result.seconds["dblp-s"]) == 4
        assert "paper (8 epochs, n/4)" in result.render()

    def test_scheduling(self, tiny_workspace):
        result = run_scheduling_ablation(tiny_workspace)
        pushes = result.pushes["dblp-s"]
        assert set(pushes) == {"fifo", "lifo", "max-residue"}
        assert all(v > 0 for v in pushes.values())
        assert "fifo" in result.render()


class TestRunnerRegistry:
    def test_ids_match_design_doc(self):
        assert experiment_ids() == [
            "T1",
            "T2",
            "F4",
            "F5",
            "F6",
            "F7",
            "F8",
            "A1",
            "A2",
            "DY",
        ]

    def test_dispatch_case_insensitive(self, tiny_workspace):
        result = run_experiment("t1", tiny_workspace)
        assert "dblp-s" in result.render()

    def test_unknown_id_rejected(self, tiny_workspace):
        with pytest.raises(ParameterError):
            run_experiment("F99", tiny_workspace)
