"""Unit tests for error and ranking metrics and ground-truth computation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.metrics.errors import (
    l1_error,
    l2_error,
    max_absolute_error,
    max_relative_error,
    relative_error_violations,
)
from repro.metrics.ground_truth import (
    clear_ground_truth_cache,
    exact_ppr_dense,
    ground_truth_ppr,
)
from repro.metrics.ranking import (
    kendall_tau_at_k,
    ndcg_at_k,
    precision_at_k,
    top_k_nodes,
)


class TestErrorNorms:
    def test_l1(self):
        assert l1_error(np.array([0.5, 0.5]), np.array([0.4, 0.6])) == (
            pytest.approx(0.2)
        )

    def test_l2(self):
        assert l2_error(np.array([1.0, 0.0]), np.array([0.0, 0.0])) == 1.0

    def test_max_absolute(self):
        assert max_absolute_error(
            np.array([0.1, 0.9]), np.array([0.3, 0.8])
        ) == pytest.approx(0.2)

    def test_max_relative_thresholded(self):
        truth = np.array([0.5, 0.001])
        estimate = np.array([0.55, 0.01])
        # Only the node with truth >= mu counts.
        assert max_relative_error(
            estimate, truth, mu=0.1
        ) == pytest.approx(0.1)

    def test_max_relative_no_qualifying_nodes(self):
        assert (
            max_relative_error(np.array([1.0]), np.array([0.0]), mu=0.5)
            == 0.0
        )

    def test_violations_count(self):
        truth = np.array([0.5, 0.4, 0.001])
        estimate = np.array([0.5, 0.8, 0.5])
        assert (
            relative_error_violations(
                estimate, truth, mu=0.1, epsilon=0.5
            )
            == 1
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            l1_error(np.zeros(3), np.zeros(4))


class TestRanking:
    def test_top_k_order_and_ties(self):
        scores = np.array([0.1, 0.5, 0.5, 0.2])
        assert top_k_nodes(scores, 3).tolist() == [1, 2, 3]

    def test_precision_at_k(self):
        truth = np.array([0.4, 0.3, 0.2, 0.1])
        estimate = np.array([0.4, 0.1, 0.3, 0.2])
        assert precision_at_k(estimate, truth, 2) == 0.5

    def test_precision_perfect(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert precision_at_k(scores, scores, 3) == 1.0

    def test_ndcg_bounds(self):
        truth = np.array([0.4, 0.3, 0.2, 0.1])
        estimate = np.array([0.1, 0.2, 0.3, 0.4])
        value = ndcg_at_k(estimate, truth, 4)
        assert 0.0 < value < 1.0
        assert ndcg_at_k(truth, truth, 4) == pytest.approx(1.0)

    def test_kendall_tau_perfect_and_inverted(self):
        truth = np.array([0.4, 0.3, 0.2, 0.1])
        assert kendall_tau_at_k(truth, truth, 4) == 1.0
        assert kendall_tau_at_k(-truth, truth, 4) == -1.0

    def test_kendall_tau_tiny_k(self):
        truth = np.array([0.4, 0.3])
        assert kendall_tau_at_k(truth, truth, 1) == 1.0

    def test_negative_k_rejected(self):
        with pytest.raises(ParameterError):
            top_k_nodes(np.array([1.0]), -1)


class TestExactDense:
    def test_solution_satisfies_equation_1(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0, alpha=0.2)
        p = paper_graph.to_scipy_csr(weighted=True).toarray()
        e_s = np.zeros(5)
        e_s[0] = 1.0
        lhs = truth
        rhs = 0.2 * e_s + 0.8 * truth @ p
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_sums_to_one(self, paper_graph):
        for source in range(5):
            truth = exact_ppr_dense(paper_graph, source)
            assert truth.sum() == pytest.approx(1.0)

    def test_rejects_large_graphs(self, paper_graph):
        with pytest.raises(ParameterError):
            exact_ppr_dense(paper_graph, 0, max_nodes=3)

    def test_dead_end_policies_differ(self, dead_end_graph):
        redirect = exact_ppr_dense(dead_end_graph, 0)
        uniform = exact_ppr_dense(
            dead_end_graph, 0, dead_end_policy="uniform-teleport"
        )
        assert l1_error(redirect, uniform) > 1e-3


class TestGroundTruth:
    def test_matches_dense(self, paper_graph):
        clear_ground_truth_cache()
        dense = exact_ppr_dense(paper_graph, 0)
        iterative = ground_truth_ppr(paper_graph, 0, l1_threshold=1e-14)
        np.testing.assert_allclose(iterative, dense, atol=1e-12)

    def test_cache_returns_same_array(self, paper_graph):
        clear_ground_truth_cache()
        first = ground_truth_ppr(paper_graph, 0)
        second = ground_truth_ppr(paper_graph, 0)
        assert first is second
        clear_ground_truth_cache()

    def test_cached_array_immutable(self, paper_graph):
        clear_ground_truth_cache()
        truth = ground_truth_ppr(paper_graph, 0)
        with pytest.raises(ValueError):
            truth[0] = 0.0
        clear_ground_truth_cache()
