"""Tests for the self-healing side of the sharded serving tier.

Policy units first (:class:`RestartPolicy`, :class:`RetryPolicy`,
:class:`CircuitBreaker` are pure state machines — deterministic under
a seed, no processes involved), then end-to-end supervision through a
real :class:`ShardedDispatcher`: a SIGKILLed shard is detected,
respawned over the same shared-memory graph image, caught up through
the update journal, and serves byte-identical answers; an exhausted
restart budget degrades capacity without hanging a single future.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.api import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph
from repro.serving import ShardedDispatcher
from repro.serving.supervisor import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RestartPolicy,
    RetryPolicy,
)

PARAMS = {"l1_threshold": 1e-6}

#: Fast-but-deterministic restart policy for end-to-end tests.
FAST_RESTARTS = dict(base_delay=0.01, jitter=0.0, seed=7)


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(31)
    return rmat_digraph(8, 1500, rng=rng, name="supervisor-base")


def pick_updates(graph):
    """Two deterministic edge inserts that are legal on ``graph``."""
    updates = []
    for u in (1, 2):
        v = next(
            v
            for v in range(graph.num_nodes)
            if v != u and not graph.has_edge(u, v)
        )
        updates.append(("add", u, v))
    return updates


def wait_respawn(disp, worker_id, generation=1, timeout=30.0):
    """Block until ``worker_id`` is alive at ``generation`` or later."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = disp._states.get(worker_id)
        if (
            state is not None
            and state.generation >= generation
            and state.alive
        ):
            return state
        time.sleep(0.02)
    raise AssertionError(
        f"worker {worker_id} did not respawn to generation {generation}"
    )


def wait_heartbeat(disp, worker_id, version, timeout=10.0):
    """Block until the worker's heartbeat reports ``version``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        beat = disp.stats().get("heartbeats", {}).get(str(worker_id))
        if beat is not None and beat["graph_version"] == version:
            return beat
        time.sleep(0.05)
    raise AssertionError(
        f"worker {worker_id} never heartbeat graph version {version}"
    )


class TestRestartPolicy:
    def test_delays_are_seed_deterministic_and_jittered(self):
        policy = RestartPolicy(seed=3)
        twin = RestartPolicy(seed=3)
        sequence = [policy.delay(1, attempt) for attempt in range(4)]
        assert sequence == [twin.delay(1, attempt) for attempt in range(4)]
        # Exponential growth stretched by a jitter factor in
        # [1, 1 + jitter], never shrunk.
        for attempt, got in enumerate(sequence):
            raw = min(
                policy.max_delay,
                policy.base_delay * policy.multiplier**attempt,
            )
            assert raw <= got <= raw * (1.0 + policy.jitter)
        assert sequence[0] < sequence[1] < sequence[2]

    def test_jitter_streams_are_independent_per_worker_and_seed(self):
        policy = RestartPolicy(seed=3)
        assert [policy.delay(1, a) for a in range(4)] != [
            policy.delay(2, a) for a in range(4)
        ]
        other_seed = RestartPolicy(seed=4)
        assert [policy.delay(1, a) for a in range(4)] != [
            other_seed.delay(1, a) for a in range(4)
        ]

    def test_delay_caps_at_max_delay(self):
        policy = RestartPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0
        )
        assert policy.delay(0, 5) == 2.0

    def test_budget(self):
        policy = RestartPolicy(max_restarts=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)
        assert not RestartPolicy(max_restarts=0).allows(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": -1.0},
            {"max_restarts": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            RestartPolicy(**kwargs)


class TestRetryPolicy:
    def test_first_retry_is_immediate_then_backs_off(self):
        policy = RetryPolicy(seed=0)
        assert policy.delay(0) == 0.0
        first = policy.delay(1)
        second = policy.delay(2)
        assert 0.0 < first < second
        assert policy.delay(1) == first  # seed-deterministic

    def test_budget_exhaustion_returns_none(self):
        policy = RetryPolicy(max_attempts=2)
        now = 100.0
        assert policy.next_delay(0, deadline=None, now=now) == 0.0
        assert policy.next_delay(1, deadline=None, now=now) is not None
        assert policy.next_delay(2, deadline=None, now=now) is None

    def test_deadline_awareness(self):
        policy = RetryPolicy(seed=0)
        now = 100.0
        # A backoff landing past the deadline gives up now rather
        # than burning a shard on an unreadable answer.
        assert (
            policy.next_delay(1, deadline=now + 1e-4, now=now) is None
        )
        assert (
            policy.next_delay(1, deadline=now + 60.0, now=now) is not None
        )
        # Even the free immediate retry respects an expired deadline.
        assert policy.next_delay(0, deadline=now, now=now) is None

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay=-0.5)


class TestCircuitBreaker:
    def test_consecutive_failures_trip_and_cooldown_probes(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0)
        now = 50.0
        for _ in range(2):
            breaker.record_failure(now)
        assert breaker.state == CLOSED
        breaker.record_failure(now)
        assert breaker.state == OPEN
        assert breaker.open_events == 1
        assert not breaker.allows(now + 0.5)
        # Cooldown elapsed: exactly one half-open probe is admitted.
        assert breaker.allows(now + 1.0)
        assert breaker.state == HALF_OPEN
        assert not breaker.allows(now + 1.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allows(now + 1.1)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(10.0)
        assert breaker.allows(11.0)  # the probe
        breaker.record_failure(11.0)
        assert breaker.state == OPEN
        assert breaker.open_events == 2
        assert not breaker.allows(11.5)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(1.0)
        breaker.record_success()
        breaker.record_failure(2.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED

    def test_trip_forces_open(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.trip(5.0)
        assert breaker.state == OPEN
        assert not breaker.allows(5.1)
        assert breaker.snapshot()["state"] == OPEN


class TestRespawnEndToEnd:
    def test_killed_worker_respawns_fresh_and_serves_identically(
        self, base
    ):
        policy = RestartPolicy(max_restarts=3, **FAST_RESTARTS)
        with ShardedDispatcher(
            base, workers=2, alpha=0.2, seed=7, restart_policy=policy
        ) as disp:
            sources = list(range(16))
            disp.batch(sources, "powerpush", **PARAMS)  # warm both shards
            victim = 0
            os.kill(disp._states[victim].process.pid, signal.SIGKILL)

            state = wait_respawn(disp, victim)
            assert state.generation == 1
            # The respawn starts a *fresh* EngineServer: no inherited
            # ResultCache (satellite: a respawn must never serve a
            # stale memo from its previous life).
            beat = wait_heartbeat(disp, victim, version=0)
            assert beat["cache_size"] == 0

            stats = disp.stats()
            supervisor = stats["supervisor"]
            assert supervisor["respawns"] == 1
            assert supervisor["degraded_capacity"] is False
            assert supervisor["removed"] == []
            assert supervisor["restarts"][str(victim)] == 1
            recovery = supervisor["recovery_s"]
            assert recovery["last"] is not None and recovery["last"] > 0.0
            assert recovery["max"] >= recovery["last"]

            engine = PPREngine(base, alpha=0.2, seed=7)
            for source in sources:
                served = disp.query(source, "powerpush", **PARAMS)
                expected = engine.query(source, "powerpush", **PARAMS)
                assert (
                    served.result.estimate.tobytes()
                    == expected.estimate.tobytes()
                )
            assert disp.num_workers == 2

    def test_budget_exhaustion_degrades_without_hung_futures(self, base):
        policy = RestartPolicy(max_restarts=1, **FAST_RESTARTS)
        with ShardedDispatcher(
            base, workers=2, alpha=0.2, seed=7, restart_policy=policy
        ) as disp:
            sources = list(range(12))
            disp.batch(sources, "powerpush", **PARAMS)
            victim = 0
            os.kill(disp._states[victim].process.pid, signal.SIGKILL)
            state = wait_respawn(disp, victim, generation=1)

            # Second death exhausts the budget of 1: permanent removal.
            os.kill(state.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if disp.stats()["supervisor"]["removed"] == [victim]:
                    break
                time.sleep(0.05)
            supervisor = disp.stats()["supervisor"]
            assert supervisor["removed"] == [victim]
            assert supervisor["respawns"] == 1
            assert supervisor["permanent_failures"] == 1
            assert supervisor["degraded_capacity"] is True

            # Degraded, not dead: every future still resolves on the
            # survivor, byte-identical.
            futures = [
                disp.submit(s, "powerpush", **PARAMS) for s in sources
            ]
            engine = PPREngine(base, alpha=0.2, seed=7)
            for source, future in zip(sources, futures):
                served = future.result(timeout=60)
                assert served.worker == 1
                expected = engine.query(source, "powerpush", **PARAMS)
                assert (
                    served.result.estimate.tobytes()
                    == expected.estimate.tobytes()
                )
            assert disp.num_workers == 1

    def test_respawn_racing_concurrent_updates_lands_on_new_version(
        self, base
    ):
        updates = pick_updates(base)
        policy = RestartPolicy(max_restarts=3, **FAST_RESTARTS)
        with ShardedDispatcher(
            DynamicGraph(base),
            workers=2,
            alpha=0.2,
            seed=7,
            restart_policy=policy,
        ) as disp:
            disp.batch(list(range(8)), "powerpush", **PARAMS)
            victim = 0
            os.kill(disp._states[victim].process.pid, signal.SIGKILL)
            # Broadcast while death detection / respawn is in flight:
            # the barrier settles on the survivor, and the respawn
            # must replay the journal to the *post-update* version.
            version = disp.apply_updates(updates)
            assert version == len(updates)

            wait_respawn(disp, victim)
            beat = wait_heartbeat(disp, victim, version=version)
            assert beat["cache_size"] == 0

            reference = PPREngine(DynamicGraph(base), alpha=0.2, seed=7)
            reference.apply_updates(updates)
            for source in (0, 1, 2, 7, 19):
                served = disp.query(source, "powerpush", **PARAMS)
                expected = reference.query(source, "powerpush", **PARAMS)
                assert served.version == version
                assert (
                    served.result.estimate.tobytes()
                    == expected.estimate.tobytes()
                )
            assert disp.num_workers == 2
