"""Unit and contract tests for SpeedPPR (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.speedppr import speed_ppr
from repro.errors import ParameterError
from repro.metrics.errors import max_relative_error, relative_error_violations
from repro.metrics.ground_truth import ground_truth_ppr
from repro.montecarlo.chernoff import chernoff_walk_count
from repro.walks.index import build_walk_index, speedppr_walk_counts


class TestContract:
    def test_relative_error_contract(self, medium_graph, rng):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 0, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        result = speed_ppr(
            medium_graph,
            0,
            epsilon=0.5,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert (
            max_relative_error(result.estimate, truth, mu=mu) <= 0.5
        )

    def test_tighter_epsilon_is_more_accurate(self, medium_graph):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 3, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        loose_violations = 0
        tight_violations = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            loose = speed_ppr(
                medium_graph,
                3,
                epsilon=0.5,
                rng=rng,
                allow_monte_carlo_shortcut=False,
            )
            tight = speed_ppr(
                medium_graph,
                3,
                epsilon=0.1,
                rng=rng,
                allow_monte_carlo_shortcut=False,
            )
            loose_violations += relative_error_violations(
                loose.estimate, truth, mu=mu, epsilon=0.1
            )
            tight_violations += relative_error_violations(
                tight.estimate, truth, mu=mu, epsilon=0.1
            )
        assert tight_violations <= loose_violations

    def test_estimate_near_distribution(self, medium_graph, rng):
        result = speed_ppr(
            medium_graph,
            5,
            epsilon=0.3,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert result.estimate.sum() == pytest.approx(1.0, abs=0.05)
        assert np.all(result.estimate >= 0)


class TestWalkBudget:
    def test_at_most_m_walks(self, medium_graph, rng):
        # Theorem 6.1's index-size property: W_v <= d_v after the
        # refinement, so at most m walks in total — for ANY epsilon.
        for epsilon in (0.5, 0.1):
            result = speed_ppr(
                medium_graph,
                2,
                epsilon=epsilon,
                rng=rng,
                allow_monte_carlo_shortcut=False,
            )
            assert (
                result.counters.random_walks <= medium_graph.num_edges
            )

    def test_refined_residues_below_one_over_w(self, medium_graph, rng):
        epsilon = 0.3
        n = medium_graph.num_nodes
        w = chernoff_walk_count(epsilon, 1.0 / n, p_fail=1.0 / n)
        result = speed_ppr(
            medium_graph,
            2,
            epsilon=epsilon,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert result.residue is not None
        effective = medium_graph.out_degree.astype(float)
        assert np.all(result.residue <= effective / w + 1e-12)


class TestIndexVariant:
    def test_index_version_runs_without_rng(self, medium_graph, rng):
        index = build_walk_index(
            medium_graph, speedppr_walk_counts(medium_graph), rng=rng
        )
        result = speed_ppr(
            medium_graph,
            4,
            epsilon=0.4,
            walk_index=index,
            allow_monte_carlo_shortcut=False,
        )
        assert result.method == "SpeedPPR-Index"
        assert result.estimate.sum() == pytest.approx(1.0, abs=0.05)

    def test_one_index_serves_all_epsilons(self, medium_graph, rng):
        # The headline feature: the same index answers every epsilon.
        index = build_walk_index(
            medium_graph, speedppr_walk_counts(medium_graph), rng=rng
        )
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 4, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        for epsilon in (0.5, 0.3, 0.1):
            result = speed_ppr(
                medium_graph,
                4,
                epsilon=epsilon,
                walk_index=index,
                allow_monte_carlo_shortcut=False,
            )
            assert (
                max_relative_error(result.estimate, truth, mu=mu)
                <= epsilon * 1.5  # slack for the one-sided seed
            )


class TestShortcutAndValidation:
    def test_mc_shortcut_when_m_exceeds_w(self, paper_graph, rng):
        # Tiny graph: W(eps=0.5) >> m is false here... force it with a
        # large epsilon and explicit mu making W small.
        result = speed_ppr(
            paper_graph, 0, epsilon=3.0, mu=0.9, rng=rng
        )
        assert result.method == "SpeedPPR[mc-shortcut]"

    def test_rejects_bad_epsilon(self, paper_graph, rng):
        with pytest.raises(ParameterError):
            speed_ppr(paper_graph, 0, epsilon=0.0, rng=rng)

    def test_rejects_bad_mu(self, paper_graph, rng):
        with pytest.raises(ParameterError):
            speed_ppr(paper_graph, 0, epsilon=0.5, mu=2.0, rng=rng)

    def test_method_name(self, medium_graph, rng):
        result = speed_ppr(
            medium_graph,
            0,
            epsilon=0.5,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert result.method == "SpeedPPR"
