"""PPREngine on evolving graphs: versioned caches, repair, invalidation.

The hard guarantee under test: across a graph-version change every
cached artefact is either invalidated or repaired — no query is ever
answered from an index built for a previous version of the graph.
"""

import numpy as np
import pytest

from repro.api.engine import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update


@pytest.fixture
def dyn():
    rng = np.random.default_rng(17)
    return DynamicGraph(rmat_digraph(9, 3000, rng=rng, name="engine-dyn"))


@pytest.fixture
def engine(dyn):
    return PPREngine(dyn, alpha=0.2, seed=7)


def mutate(engine, count=1, seed=0):
    rng = np.random.default_rng(1234 + seed)
    for _ in range(count):
        engine.apply_updates(
            [sample_edge_update(engine.dynamic_graph, rng)]
        )


class TestVersionedGraph:
    def test_graph_property_tracks_updates(self, engine, dyn):
        before = engine.graph
        assert engine.graph_version == 0
        mutate(engine)
        assert engine.graph_version == dyn.version == 1
        after = engine.graph
        assert after is not before
        assert after.num_edges == dyn.num_edges

    def test_static_engine_rejects_updates(self, paper_graph):
        engine = PPREngine(paper_graph)
        assert engine.dynamic_graph is None
        assert engine.graph_version == 0
        with pytest.raises(ParameterError, match="DynamicGraph"):
            engine.apply_updates([("+", 0, 4)])
        with pytest.raises(ParameterError, match="DynamicGraph"):
            engine.track(0)


class TestCacheInvalidation:
    def test_walk_index_invalidated(self, engine):
        first = engine.walk_index()
        assert engine.walk_index() is first  # cached while version holds
        mutate(engine)
        second = engine.walk_index()
        assert second is not first
        assert engine.index_builds["walk"] == 2
        assert engine.index_invalidations["walk"] == 1
        second.check_graph(engine.graph)  # serves the *current* graph

    def test_bepi_index_invalidated(self, engine):
        engine.query(0, method="bepi")
        assert engine.index_builds["bepi"] == 1
        mutate(engine)
        engine.query(0, method="bepi")
        assert engine.index_builds["bepi"] == 2
        assert engine.index_invalidations["bepi"] == 1

    def test_fora_indexes_invalidated(self, engine):
        engine.fora_index(0.5)
        engine.fora_index(0.1)
        assert engine.index_builds["fora"] == 2
        mutate(engine)
        engine.fora_index(0.5)
        assert engine.index_invalidations["fora"] == 2
        assert engine.index_builds["fora"] == 3

    def test_queries_after_update_match_fresh_engine(self, engine, dyn):
        """The invalidate-and-rebuild path must be indistinguishable
        from a cold engine on the compacted graph."""
        engine.query(1, method="speedppr", epsilon=0.3, seed=5)
        mutate(engine, count=10)
        served = engine.query(1, method="speedppr", epsilon=0.3, seed=5)

        fresh = PPREngine(dyn.snapshot(), alpha=0.2, seed=7)
        expected = fresh.query(1, method="speedppr", epsilon=0.3, seed=5)
        np.testing.assert_array_equal(served.estimate, expected.estimate)

    def test_exact_query_runs_on_current_snapshot(self, engine, dyn):
        before = engine.query(2, method="powerpush", l1_threshold=1e-8)
        mutate(engine, count=20, seed=9)
        after = engine.query(2, method="powerpush", l1_threshold=1e-8)
        fresh = PPREngine(dyn.snapshot(), alpha=0.2, seed=7)
        expected = fresh.query(2, method="powerpush", l1_threshold=1e-8)
        np.testing.assert_array_equal(after.estimate, expected.estimate)
        assert float(np.abs(after.estimate - before.estimate).sum()) > 0


class TestTrackedSources:
    def test_track_and_incremental_query(self, engine):
        tracker = engine.track(4, l1_threshold=1e-8)
        assert engine.tracked_sources == (4,)
        assert engine.track(4) is tracker  # idempotent
        result = engine.query(4, method="incremental")
        assert result.method == "IncrementalPPR"
        assert result.source == 4
        assert tracker.error_bound <= 1e-8

    def test_incremental_repairs_after_updates(self, engine, dyn):
        engine.track(4, l1_threshold=1e-8)
        mutate(engine, count=25, seed=3)
        repaired = engine.query(4, method="incremental")
        fresh = PPREngine(dyn.snapshot(), alpha=0.2, seed=7)
        scratch = fresh.query(4, method="powerpush", l1_threshold=1e-8)
        gap = float(np.abs(repaired.estimate - scratch.estimate).sum())
        assert gap <= 2e-8 + 1e-14
        assert repaired.counters.extras.get("residue_corrections") == 25

    def test_incremental_auto_tracks(self, engine):
        result = engine.query(6, method="incremental", l1_threshold=1e-7)
        assert engine.tracked_sources == (6,)
        assert result.source == 6
        # alias spelling resolves to the same engine-level method
        again = engine.query(6, method="tracked")
        assert again.counters.residue_updates == 0  # nothing pending

    def test_incremental_rejects_threshold_change(self, engine):
        engine.query(6, method="incremental", l1_threshold=1e-7)
        with pytest.raises(ParameterError, match="re-track"):
            engine.query(6, method="incremental", l1_threshold=1e-9)

    def test_track_rejects_conflicting_threshold(self, engine):
        engine.track(6, l1_threshold=1e-7)
        with pytest.raises(ParameterError, match="untrack"):
            engine.track(6, l1_threshold=1e-9)

    def test_untrack_allows_retracking_at_new_contract(self, engine):
        engine.track(6, l1_threshold=1e-7)
        engine.untrack(6)
        assert engine.tracked_sources == ()
        tracker = engine.track(6, l1_threshold=1e-9)
        assert tracker.l1_threshold == 1e-9
        engine.untrack(99)  # unknown source is a no-op

    def test_incremental_rejects_unknown_params(self, engine):
        with pytest.raises(ParameterError, match="does not accept"):
            engine.query(6, method="incremental", epsilon=0.5)

    def test_incremental_recorded_in_stats(self, engine):
        engine.query(4, method="incremental")
        assert "IncrementalPPR" in engine.stats.by_method
        assert engine.stats.queries == 1

    def test_batch_query_supports_incremental(self, engine):
        results = engine.batch_query([2, 4], method="incremental")
        assert [r.source for r in results] == [2, 4]
        assert all(r.method == "IncrementalPPR" for r in results)
        assert engine.tracked_sources == (2, 4)

    def test_top_k_supports_incremental(self, engine):
        mutated = engine.track(4)
        mutate(engine, count=5)
        top = engine.top_k(4, 3, method="incremental")
        assert len(top.ranking) == 3
        assert top.result.method == "IncrementalPPR"
        assert not mutated.stale
        # The tracked source itself dominates its own PPR by far more
        # than the certified bound, so the set certifies.
        assert top.certified

    def test_journal_trimmed_behind_trackers(self, engine, dyn):
        engine.track(4)
        mutate(engine, count=10)
        assert len(dyn.updates_since(0)) == 10
        engine.query(4, method="incremental")
        assert dyn.journal_floor == dyn.version  # prefix reclaimed
        assert dyn.updates_since(dyn.version) == []

    def test_journal_trimmed_eagerly_without_trackers(self, engine, dyn):
        mutate(engine, count=5)
        assert dyn.journal_floor == dyn.version
        # A tracker created afterwards never needed those entries.
        engine.track(4)
        mutate(engine, count=3)
        result = engine.query(4, method="incremental")
        assert result.counters.extras.get("residue_corrections") == 3
