"""Checkpoint store, DurabilityManager, and crash-recovery semantics.

The contract under test: checkpoint + WAL-suffix replay reconstructs
exactly the state an uninterrupted run would hold — same version, byte
identical CSR — for any interleaving of updates, compactions, and
checkpoints, and every simulated crash (scheduled process kill, torn
tail at every byte offset) recovers to the logged version.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability import (
    CheckpointStore,
    DurabilityManager,
    WalPosition,
    graph_fingerprint,
    open_durable_graph,
    run_crash_harness,
    torn_tail_sweep,
)
from repro.errors import CheckpointError, ParameterError, RecoveryError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update


def _graph(seed=3, scale=6, edges=120):
    return rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="dur-test"
    )


def _updates(base, count, seed=17):
    scratch = DynamicGraph(base)
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        update = sample_edge_update(scratch, rng)
        scratch.apply_updates([update])
        out.append(update)
    return out


def _same_csr(a, b):
    snap_a, snap_b = a.snapshot(), b.snapshot()
    return np.array_equal(
        snap_a.out_indptr, snap_b.out_indptr
    ) and np.array_equal(snap_a.out_indices, snap_b.out_indices)


class TestCheckpointStore:
    def test_write_load_round_trip(self, tmp_path):
        base = _graph()
        graph = DynamicGraph(base)
        graph.apply_updates(_updates(base, 5))
        store = CheckpointStore(tmp_path)
        info = store.write(graph, WalPosition(0, 0))
        assert info.version == 5
        loaded = store.load(store.latest())
        assert loaded.version == 5
        assert _same_csr(loaded, graph)

    def test_virgin_store_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None

    def test_corrupt_artifact_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.write(DynamicGraph(_graph()), WalPosition(0, 0))
        payload = bytearray(info.graph_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        info.graph_path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointError, match="SHA-256"):
            store.load(store.latest())

    def test_missing_artifact_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.write(DynamicGraph(_graph()), WalPosition(0, 0))
        info.graph_path.unlink()
        with pytest.raises(CheckpointError, match="missing"):
            store.load(store.latest())

    def test_pointer_to_missing_directory_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.write(DynamicGraph(_graph()), WalPosition(0, 0))
        import shutil

        shutil.rmtree(info.path)
        with pytest.raises(CheckpointError, match="no such directory"):
            store.latest()

    def test_cleanup_sweeps_orphans_but_keeps_pointed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.write(DynamicGraph(_graph()), WalPosition(0, 0))
        (tmp_path / ".tmp-ckpt-000000000009").mkdir()
        (tmp_path / "ckpt-000000000042").mkdir()
        assert store.cleanup() == 2
        assert info.path.is_dir()
        assert store.latest().version == 0

    def test_fingerprint_tracks_content(self):
        base = _graph()
        graph = DynamicGraph(base)
        before = graph_fingerprint(graph.snapshot())
        graph.apply_updates(_updates(base, 1))
        assert graph_fingerprint(graph.snapshot()) != before


class TestManagerLifecycle:
    def test_bootstrap_then_recover(self, tmp_path):
        base = _graph()
        updates = _updates(base, 9)
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(updates[:4])
        manager.flush()
        graph.apply_updates(updates[4:])
        manager.flush()
        manager.close()

        manager2, recovered = open_durable_graph(tmp_path)
        reference = DynamicGraph(base)
        reference.apply_updates(updates)
        assert recovered.version == 9
        assert manager2.replayed_records == 2
        assert _same_csr(recovered, reference)
        manager2.close()

    def test_recover_ignores_supplied_base(self, tmp_path):
        base = _graph()
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(_updates(base, 3))
        manager.flush()
        manager.close()
        # The disk wins over a (different) in-memory seed.
        manager2, recovered = open_durable_graph(tmp_path, _graph(seed=99))
        assert recovered.version == 3
        manager2.close()

    def test_virgin_directory_without_base_refused(self, tmp_path):
        with pytest.raises(RecoveryError, match="no durable state"):
            open_durable_graph(tmp_path)

    def test_bootstrap_over_existing_state_refused(self, tmp_path):
        manager, _graph_ = open_durable_graph(tmp_path, _graph())
        manager.close()
        fresh = DurabilityManager(tmp_path)
        with pytest.raises(RecoveryError, match="already holds"):
            fresh.bootstrap(DynamicGraph(_graph()))
        fresh.close()

    def test_unflushed_updates_flushed_on_close(self, tmp_path):
        base = _graph()
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(_updates(base, 2))
        assert manager.pending_updates == 2
        manager.close()
        manager2, recovered = open_durable_graph(tmp_path)
        assert recovered.version == 2
        manager2.close()

    def test_one_hook_per_graph(self, tmp_path):
        base = _graph()
        manager, graph = open_durable_graph(tmp_path / "a", base)
        other = DurabilityManager(tmp_path / "b")
        with pytest.raises(ParameterError, match="hook"):
            graph.attach_wal_hook(other)
        manager.close()
        other.close()


class TestCheckpointTriggers:
    def test_auto_checkpoint_every(self, tmp_path):
        base = _graph()
        updates = _updates(base, 12)
        manager, graph = open_durable_graph(tmp_path, base, checkpoint_every=5)
        for start in range(0, 12, 3):
            graph.apply_updates(updates[start : start + 3])
            manager.flush()
        # Batches land at versions 3,6,9,12; the 5-update threshold
        # fires after the 6- and 12-version flushes.
        assert manager.stats()["last_checkpoint_version"] == 12
        latest = manager.store.latest()
        assert latest.version == 12
        # Covered segments were pruned: the WAL restarts at the
        # checkpoint's segment.
        assert manager.wal.segments[0] == latest.wal.segment
        manager.close()
        manager2, recovered = open_durable_graph(tmp_path)
        assert recovered.version == 12
        assert manager2.replayed_records == 0
        manager2.close()

    def test_compact_emits_covering_checkpoint(self, tmp_path):
        base = _graph()
        updates = _updates(base, 6)
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(updates[:4])
        manager.flush()
        graph.compact()
        assert manager.store.latest().version == 4
        # Post-compact updates replay on top of the compacted state.
        graph.apply_updates(updates[4:])
        manager.flush()
        manager.close()
        manager2, recovered = open_durable_graph(tmp_path)
        reference = DynamicGraph(base)
        reference.apply_updates(updates)
        assert recovered.version == 6
        assert _same_csr(recovered, reference)
        manager2.close()

    def test_compact_with_unflushed_tail_is_durable(self, tmp_path):
        base = _graph()
        updates = _updates(base, 3)
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(updates)  # no flush before compact
        graph.compact()
        manager.close()
        manager2, recovered = open_durable_graph(tmp_path)
        assert recovered.version == 3
        manager2.close()

    def test_demand_checkpoint_prunes_wal(self, tmp_path):
        base = _graph()
        manager, graph = open_durable_graph(tmp_path, base)
        graph.apply_updates(_updates(base, 4))
        manager.flush()
        before = manager.wal.segments
        manager.checkpoint()
        assert manager.wal.segments[0] > before[0]
        manager.close()


class TestCrashRecovery:
    def test_scheduled_kills_recover_byte_identically(self, tmp_path):
        result = run_crash_harness(workdir=tmp_path)
        assert result["ok"], result
        # The post-append kill must prove "durable beyond the ack" is
        # admitted, never the reverse.
        for case in result["cases"]:
            assert case["recovered_version"] >= case["acked_version"]

    def test_torn_tail_sweep_heals_every_offset(self, tmp_path):
        result = torn_tail_sweep(workdir=tmp_path)
        assert result["ok"], result
        assert result["offsets_ok"] == result["offsets_tested"] > 0


@st.composite
def update_scripts(draw):
    """A random interleaving of update batches, compactions, and
    checkpoints over a small R-MAT graph."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("batch"), st.integers(1, 4)),
                st.just(("compact", 0)),
                st.just(("checkpoint", 0)),
            ),
            min_size=1,
            max_size=8,
        )
    )
    seed = draw(st.integers(0, 2**16))
    return ops, seed


class TestReplayEquivalenceProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(update_scripts())
    def test_recovery_equals_uninterrupted_run(self, tmp_path_factory, script):
        ops, seed = script
        root = tmp_path_factory.mktemp("durable")
        base = _graph(seed=seed % 101)
        total = sum(count for kind, count in ops if kind == "batch")
        updates = _updates(base, max(total, 1), seed=seed)
        manager, graph = open_durable_graph(root, base)
        cursor = 0
        for kind, count in ops:
            if kind == "batch":
                graph.apply_updates(updates[cursor : cursor + count])
                cursor += count
                manager.flush()
            elif kind == "compact":
                graph.compact()
            else:
                manager.checkpoint()
        manager.close()

        manager2, recovered = open_durable_graph(root)
        reference = DynamicGraph(base)
        reference.apply_updates(updates[:cursor])
        assert recovered.version == reference.version == cursor
        assert _same_csr(recovered, reference)
        manager2.close()
