"""Unit tests for the vectorised kernels and the O(m) refinement step."""

import numpy as np
import pytest

from repro.core.kernels import (
    frontier_edge_targets,
    frontier_push,
    global_sweep,
    sweep_active,
)
from repro.core.refinement import refine_to_r_max
from repro.core.residues import PushState
from repro.errors import ConvergenceError, ParameterError
from repro.graph.build import from_edges


class TestFrontierEdgeTargets:
    def test_concatenates_in_node_order(self, paper_graph):
        targets, counts = frontier_edge_targets(
            paper_graph, np.array([0, 2])
        )
        assert targets.tolist() == [1, 2, 1, 3]
        assert counts.tolist() == [2, 2]

    def test_empty_frontier(self, paper_graph):
        targets, counts = frontier_edge_targets(
            paper_graph, np.array([], dtype=np.int64)
        )
        assert targets.shape[0] == 0

    def test_dead_end_nodes_contribute_nothing(self, dead_end_graph):
        targets, counts = frontier_edge_targets(
            dead_end_graph, np.array([1, 2])
        )
        assert targets.shape[0] == 0
        assert counts.tolist() == [0, 0]


class TestGlobalSweep:
    def test_one_sweep_equals_scalar_pushes(self, paper_graph):
        vector_state = PushState(paper_graph, 0)
        global_sweep(vector_state)

        scalar_state = PushState(paper_graph, 0)
        scalar_state.push(0)  # only the source holds residue

        np.testing.assert_allclose(
            vector_state.residue, scalar_state.residue, atol=1e-15
        )
        np.testing.assert_allclose(
            vector_state.reserve, scalar_state.reserve, atol=1e-15
        )

    def test_mass_conserved(self, paper_graph):
        state = PushState(paper_graph, 0)
        for _ in range(10):
            global_sweep(state)
        assert state.mass_total() == pytest.approx(1.0, abs=1e-12)

    def test_dead_end_mass_redirected(self, dead_end_graph):
        state = PushState(dead_end_graph, 0)
        global_sweep(state)  # source pushes to leaves
        global_sweep(state)  # leaves are dead ends -> back to source
        assert state.residue[0] > 0
        assert state.mass_total() == pytest.approx(1.0, abs=1e-12)

    def test_counting_modes(self, paper_graph):
        billed_all = PushState(paper_graph, 0)
        global_sweep(billed_all, count_all_edges=True)
        assert billed_all.counters.residue_updates == paper_graph.num_edges

        billed_holders = PushState(paper_graph, 0)
        global_sweep(billed_holders, count_all_edges=False)
        assert billed_holders.counters.residue_updates == 2  # d(source)


class TestFrontierPush:
    def test_matches_scalar_push_set(self, paper_graph):
        vector_state = PushState(paper_graph, 0)
        vector_state.push(0)
        scalar_state = PushState(paper_graph, 0)
        scalar_state.push(0)

        frontier_push(vector_state, np.array([1, 2]))
        # Simultaneous semantics: scalar pushes on the residues as they
        # were before either push — compute expected by hand instead.
        # r(v2) = r(v3) = 0.4.  Push both:
        #   v2 spreads 0.32/4 = 0.08 to v1, v3, v4, v5
        #   v3 spreads 0.32/2 = 0.16 to v2, v4
        np.testing.assert_allclose(
            vector_state.residue,
            [0.08, 0.16, 0.08, 0.24, 0.08],
            atol=1e-15,
        )
        np.testing.assert_allclose(
            vector_state.reserve, [0.2, 0.08, 0.08, 0, 0], atol=1e-15
        )

    def test_empty_frontier_noop(self, paper_graph):
        state = PushState(paper_graph, 0)
        frontier_push(state, np.array([], dtype=np.int64))
        assert state.r_sum == 1.0

    def test_self_loop_preserved(self):
        graph = from_edges(
            [(0, 0), (0, 1), (1, 0)], drop_self_loops=False
        )
        state = PushState(graph, 0)
        frontier_push(state, np.array([0]))
        assert state.residue[0] == pytest.approx(0.4)
        assert state.mass_total() == pytest.approx(1.0)

    def test_incremental_r_sum_correct(self, paper_graph):
        state = PushState(paper_graph, 0)
        frontier_push(state, np.array([0]))
        assert state.r_sum == pytest.approx(state.residue.sum(), abs=1e-12)

    def test_dead_end_in_frontier(self, dead_end_graph):
        state = PushState(dead_end_graph, 0)
        frontier_push(state, np.array([0]))
        frontier_push(state, np.array([1, 2, 3, 4]))
        assert state.mass_total() == pytest.approx(1.0, abs=1e-12)
        assert state.residue[0] > 0


class TestSweepActive:
    def test_zero_when_nothing_active(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.residue[:] = 0.0
        state.refresh_r_sum()
        assert sweep_active(state, 0.01) == 0

    def test_pushes_active_count(self, paper_graph):
        state = PushState(paper_graph, 0)
        assert sweep_active(state, 0.01) == 1  # only the source

    def test_threshold_vector_path_matches(self, medium_graph):
        r_max = 1e-4
        a = PushState(medium_graph, 0)
        b = PushState(medium_graph, 0)
        threshold = medium_graph.out_degree.astype(float) * r_max
        for _ in range(5):
            sweep_active(a, r_max)
            sweep_active(b, r_max, threshold_vec=threshold)
        np.testing.assert_allclose(a.residue, b.residue, atol=1e-12)


class TestRefinement:
    def test_terminal_condition(self, medium_graph):
        state = PushState(medium_graph, 2)
        refine_to_r_max(state, 1e-4)
        assert np.all(
            state.residue <= medium_graph.out_degree * 1e-4 + 1e-15
        )

    def test_rejects_zero_r_max(self, paper_graph):
        state = PushState(paper_graph, 0)
        with pytest.raises(ParameterError):
            refine_to_r_max(state, 0.0)

    def test_sweep_cap_raises(self, medium_graph):
        state = PushState(medium_graph, 2)
        with pytest.raises(ConvergenceError):
            refine_to_r_max(state, 1e-12, max_sweeps=1)

    def test_idempotent(self, medium_graph):
        state = PushState(medium_graph, 2)
        refine_to_r_max(state, 1e-4)
        before = state.residue.copy()
        refine_to_r_max(state, 1e-4)
        np.testing.assert_array_equal(before, state.residue)

    def test_preserves_mass(self, medium_graph):
        state = PushState(medium_graph, 2)
        refine_to_r_max(state, 1e-5)
        assert state.mass_total() == pytest.approx(1.0, abs=1e-10)
