"""Tests for the Backward Push extension (single-target PPR)."""

import numpy as np
import pytest

from repro.core.backward_push import backward_push
from repro.errors import ConvergenceError, ParameterError
from repro.graph.build import cycle_graph
from repro.metrics.ground_truth import exact_ppr_dense


def _exact_column(graph, target, alpha=0.2):
    """pi(v, target) for every v, from the dense row solves."""
    return np.array(
        [
            exact_ppr_dense(graph, v, alpha=alpha, max_nodes=1000)[target]
            for v in range(graph.num_nodes)
        ]
    )


class TestCorrectness:
    def test_additive_error_bound(self, paper_graph):
        r_max = 1e-4
        column = _exact_column(paper_graph, 2)
        result = backward_push(paper_graph, 2, r_max=r_max)
        errors = column - result.estimate
        # One-sided underestimate within r_max per node.
        assert np.all(errors >= -1e-12)
        assert errors.max() <= r_max

    def test_every_target_on_paper_graph(self, paper_graph):
        for target in range(5):
            column = _exact_column(paper_graph, target)
            result = backward_push(paper_graph, target, r_max=1e-8)
            np.testing.assert_allclose(
                result.estimate, column, atol=1e-7
            )

    def test_linearity_invariant_mid_run(self, paper_graph):
        # pi(v, t) = p(v) + sum_u r(u) pi(v, u) holds at termination.
        target = 1
        result = backward_push(paper_graph, target, r_max=1e-3)
        assert result.residue is not None
        for v in range(5):
            row_v = exact_ppr_dense(paper_graph, v)
            reconstructed = result.estimate[v] + float(
                np.dot(result.residue, row_v)
            )
            assert reconstructed == pytest.approx(
                row_v[target], abs=1e-10
            )

    def test_on_cycle(self):
        graph = cycle_graph(6)
        column = _exact_column(graph, 0)
        result = backward_push(graph, 0, r_max=1e-9)
        np.testing.assert_allclose(result.estimate, column, atol=1e-8)

    def test_medium_graph_spot_check(self, medium_graph):
        target = 7
        result = backward_push(medium_graph, target, r_max=1e-7)
        # Cross-check a few sources against the forward ground truth.
        from repro.metrics.ground_truth import ground_truth_ppr

        for source in (0, 3, 11):
            forward = ground_truth_ppr(medium_graph, source)[target]
            assert result.estimate[source] == pytest.approx(
                forward, abs=1e-6
            )


class TestBehaviour:
    def test_popular_target_touches_more(self, medium_graph):
        in_degree = medium_graph.in_degree
        popular = int(np.argmax(in_degree))
        lonely = int(np.argmin(in_degree))
        busy = backward_push(medium_graph, popular, r_max=1e-5)
        quiet = backward_push(medium_graph, lonely, r_max=1e-5)
        assert (
            busy.counters.residue_updates
            >= quiet.counters.residue_updates
        )

    def test_rejects_dead_ends(self, dead_end_graph):
        with pytest.raises(ParameterError):
            backward_push(dead_end_graph, 0)

    def test_rejects_bad_r_max(self, paper_graph):
        with pytest.raises(ParameterError):
            backward_push(paper_graph, 0, r_max=0.0)

    def test_push_cap(self, paper_graph):
        with pytest.raises(ConvergenceError):
            backward_push(paper_graph, 0, r_max=1e-10, max_pushes=2)

    def test_method_name(self, paper_graph):
        assert backward_push(paper_graph, 0).method == "BackwardPush"
