"""CLI surfaces of the checker: ``repro-ppr lint`` and ``python -m``.

The idempotence test — linting the project's own ``src/repro`` exits 0
— is the same gate CI runs; a rule change that flags the shipped tree
must either fix the tree or carry a reasoned allow.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.reporters import JSON_SCHEMA_VERSION
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def write_flagged_fixture(tmp_path: Path) -> Path:
    path = tmp_path / "repro" / "core" / "sampler.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "import numpy as np\n\n"
        "def draw(n):\n"
        "    return np.random.rand(n)\n"
    )
    return path


def test_lint_own_tree_is_clean(capsys):
    assert main(["lint", str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out


def test_lint_flagged_fixture_exits_nonzero_with_location(tmp_path, capsys):
    path = write_flagged_fixture(tmp_path)
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:4:" in out
    assert "rng-discipline" in out


def test_lint_json_schema(tmp_path, capsys):
    write_flagged_fixture(tmp_path)
    assert main(["lint", "--format", "json", str(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["tool"] == "repro-analysis"
    assert document["checked_files"] == 1
    assert {rule["id"] for rule in document["rules"]} >= {
        "rng-discipline",
        "backend-parity",
    }
    (finding,) = document["findings"]
    assert finding["rule"] == "rng-discipline"
    assert finding["line"] == 4
    assert finding["severity"] == "error"
    assert document["summary"]["total"] == 1
    assert document["summary"]["gating"] == 1
    assert document["summary"]["by_rule"] == {"rng-discipline": 1}


def test_lint_select_restricts_rules(tmp_path, capsys):
    write_flagged_fixture(tmp_path)
    assert main(
        ["lint", "--select", "version-stamp", str(tmp_path)]
    ) == 0
    capsys.readouterr()


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "rng-discipline",
        "backend-parity",
        "registry-signature-sync",
        "version-stamp",
        "lock-discipline",
        "workspace-discipline",
        "no-mutable-default",
        "no-column-fancy-gather",
        "suppression-hygiene",
    ):
        assert rule_id in out


def test_lint_unknown_rule_exits_2(capsys):
    assert main(["lint", "--select", "no-such-rule", str(SRC_REPRO)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_missing_path_exits_2(capsys):
    assert main(["lint", "/no/such/dir"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_python_dash_m_entry_point(tmp_path):
    write_flagged_fixture(tmp_path)
    flagged = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert flagged.returncode == 1
    assert "rng-discipline" in flagged.stdout
    clean = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_REPRO)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert clean.returncode == 0
