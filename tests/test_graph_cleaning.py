"""Unit tests for the Section-8 cleaning pipeline."""

import numpy as np
import pytest

from repro.graph.cleaning import clean, relabel_nodes, remove_isolated_nodes
from repro.graph.build import from_edges


class TestClean:
    def test_relabels_sparse_ids(self):
        graph, report = clean(
            np.array([100, 200]), np.array([200, 100])
        )
        assert graph.num_nodes == 2
        assert graph.num_edges == 2
        assert report.nodes_after == 2

    def test_removes_self_loops(self):
        graph, report = clean(
            np.array([0, 1, 1]), np.array([0, 0, 1])
        )
        assert report.self_loops_removed == 2
        assert graph.num_edges == 1

    def test_removes_duplicates(self):
        graph, report = clean(
            np.array([0, 0, 0, 1]), np.array([1, 1, 1, 0])
        )
        assert report.duplicates_removed == 2
        assert graph.num_edges == 2

    def test_symmetrize_doubles_edges(self):
        graph, report = clean(
            np.array([0, 1]), np.array([1, 2]), symmetrize=True
        )
        assert graph.num_edges == 4
        assert graph.undirected_origin
        assert graph.has_edge(1, 0)
        assert graph.has_edge(2, 1)

    def test_symmetrize_counts_original_self_loops(self):
        _, report = clean(
            np.array([0, 1]), np.array([0, 2]), symmetrize=True
        )
        assert report.self_loops_removed == 1

    def test_isolated_nodes_dropped_implicitly(self):
        # Node 5 appears nowhere in the edges: never part of the graph.
        graph, report = clean(np.array([0, 9]), np.array([9, 0]))
        assert graph.num_nodes == 2

    def test_empty_input(self):
        graph, report = clean(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert graph.num_nodes == 0
        assert report.edges_before == 0

    def test_summary_mentions_counts(self):
        _, report = clean(np.array([0, 0]), np.array([1, 1]))
        text = report.summary()
        assert "edges" in text and "nodes" in text


class TestRemoveIsolated:
    def test_no_isolated_is_identity(self):
        graph = from_edges([(0, 1), (1, 0)])
        cleaned, mapping = remove_isolated_nodes(graph)
        assert cleaned is graph
        assert mapping.tolist() == [0, 1]

    def test_isolated_removed_and_mapped(self):
        graph = from_edges([(0, 2), (2, 0)], num_nodes=4)
        cleaned, mapping = remove_isolated_nodes(graph)
        assert cleaned.num_nodes == 2
        assert mapping.tolist() == [0, 2]
        assert cleaned.has_edge(0, 1)


class TestRelabel:
    def test_subgraph_induction(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)])
        sub = relabel_nodes(graph, np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        # (2, 3) and (3, 2) dropped with node 3.
        assert sub.num_edges == 3

    def test_preserves_name(self):
        graph = from_edges([(0, 1), (1, 0)], name="keepme")
        sub = relabel_nodes(graph, np.array([0, 1]))
        assert sub.name == "keepme"
