"""Cross-algorithm integration tests.

Every high-precision algorithm must agree with the dense linear solve;
every approximate algorithm must meet its contract on seeded runs; and
the composite pipelines (SpeedPPR = PowerPush + refinement + MC) must
be consistent with their pieces.
"""

import numpy as np
import pytest

from repro.baselines.fora import fora
from repro.baselines.resacc import resacc
from repro.bepi.blockelim import build_bepi_index
from repro.bepi.solver import bepi_query
from repro.core.fifo_fwdpush import fifo_forward_push
from repro.core.fwdpush import forward_push
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import power_push
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.core.speedppr import speed_ppr
from repro.metrics.errors import l1_error, max_relative_error
from repro.metrics.ground_truth import exact_ppr_dense, ground_truth_ppr
from repro.montecarlo.mc import monte_carlo_ppr


LAMBDA = 1e-9


def _hp_answers(graph, source):
    """All high-precision algorithms at the same lambda."""
    answers = {
        "PowItr": power_iteration(graph, source, l1_threshold=LAMBDA),
        "SimFwdPush": simultaneous_forward_push(
            graph, source, l1_threshold=LAMBDA
        ),
        "PowerPush": power_push(graph, source, l1_threshold=LAMBDA),
        "PowerPush-faithful": power_push(
            graph, source, l1_threshold=LAMBDA, mode="faithful"
        ),
        "FIFO-frontier": fifo_forward_push(
            graph, source, l1_threshold=LAMBDA
        ),
        "FIFO-faithful": fifo_forward_push(
            graph, source, l1_threshold=LAMBDA, mode="faithful"
        ),
    }
    return answers


class TestHighPrecisionAgreement:
    @pytest.mark.parametrize("source", [0, 3])
    def test_all_algorithms_agree_on_paper_graph(self, paper_graph, source):
        truth = exact_ppr_dense(paper_graph, source)
        for name, result in _hp_answers(paper_graph, source).items():
            assert l1_error(result.estimate, truth) <= 2 * LAMBDA, name

    def test_all_algorithms_agree_on_random_graphs(self, small_random_graphs):
        for graph in small_random_graphs:
            truth = exact_ppr_dense(graph, 1)
            for name, result in _hp_answers(graph, 1).items():
                assert l1_error(result.estimate, truth) <= 2 * LAMBDA, (
                    graph.name,
                    name,
                )

    def test_lifo_scheduler_agrees_at_milder_threshold(
        self, small_random_graphs
    ):
        # LIFO has only the O(1/r_max) bound (the pre-Theorem-4.3 state
        # of the art), so it runs at a milder threshold here; FIFO at
        # lambda = 1e-9 is covered above.
        lam = 1e-4
        for graph in small_random_graphs:
            truth = exact_ppr_dense(graph, 1)
            result = forward_push(
                graph, 1, r_max=lam / graph.num_edges, scheduler="lifo"
            )
            assert l1_error(result.estimate, truth) <= lam, graph.name

    def test_bepi_agrees_on_random_graphs(self, small_random_graphs):
        for graph in small_random_graphs:
            truth = exact_ppr_dense(graph, 1)
            index = build_bepi_index(graph)
            result = bepi_query(graph, index, 1, delta=1e-12)
            assert l1_error(result.estimate, truth) <= 1e-7, graph.name


class TestApproximateContracts:
    """Every approximate algorithm meets the eps contract with margin.

    One seeded run each; the Chernoff budget makes failure probability
    ~1/n, so a deterministic seed that passes stays passing.
    """

    EPSILON = 0.5

    def test_contracts_on_medium_graph(self, medium_graph):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 0, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        algorithms = {
            "MonteCarlo": lambda rng: monte_carlo_ppr(
                medium_graph, 0, epsilon=self.EPSILON, rng=rng
            ),
            "FORA": lambda rng: fora(
                medium_graph,
                0,
                epsilon=self.EPSILON,
                rng=rng,
                allow_monte_carlo_shortcut=False,
            ),
            "ResAcc": lambda rng: resacc(
                medium_graph, 0, epsilon=self.EPSILON, rng=rng
            ),
            "SpeedPPR": lambda rng: speed_ppr(
                medium_graph,
                0,
                epsilon=self.EPSILON,
                rng=rng,
                allow_monte_carlo_shortcut=False,
            ),
        }
        for name, runner in algorithms.items():
            result = runner(np.random.default_rng(42))
            error = max_relative_error(result.estimate, truth, mu=mu)
            assert error <= self.EPSILON, (name, error)

    def test_speedppr_beats_fora_accuracy_at_small_eps(self, medium_graph):
        # Figure 8's headline shape, averaged over a few seeds.
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 5, l1_threshold=1e-13)
        )
        speed_err = 0.0
        fora_err = 0.0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            speed_err += l1_error(
                speed_ppr(
                    medium_graph,
                    5,
                    epsilon=0.1,
                    rng=rng,
                    allow_monte_carlo_shortcut=False,
                ).estimate,
                truth,
            )
            fora_err += l1_error(
                fora(
                    medium_graph,
                    5,
                    epsilon=0.1,
                    rng=rng,
                    allow_monte_carlo_shortcut=False,
                ).estimate,
                truth,
            )
        assert speed_err < fora_err


class TestCompositePipelines:
    def test_speedppr_walks_fewer_than_fora(self, medium_graph):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        speed = speed_ppr(
            medium_graph,
            2,
            epsilon=0.1,
            rng=rng_a,
            allow_monte_carlo_shortcut=False,
        )
        fora_result = fora(
            medium_graph,
            2,
            epsilon=0.1,
            rng=rng_b,
            allow_monte_carlo_shortcut=False,
        )
        assert (
            speed.counters.random_walks < fora_result.counters.random_walks
        )

    def test_hp_result_reusable_as_truth(self, medium_graph):
        # PowerPush at 1e-12 is a valid ground truth for eps checks.
        fine = power_push(medium_graph, 8, l1_threshold=1e-12)
        coarse = power_push(medium_graph, 8, l1_threshold=1e-6)
        assert l1_error(coarse.estimate, fine.estimate) <= 1.1e-6
