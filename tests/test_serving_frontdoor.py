"""Tests for the async SLO-aware front door (:mod:`repro.serving.frontdoor`).

Contracts under test: answers through the front door are byte-identical
to the sync path (degraded answers to the sync answer of the *degraded*
request); deadlines fail fast with a typed error at every stage;
admission control sheds at the in-flight bound and degrades when the
p99 prediction blows the SLO (with periodic full-fidelity probes); the
micro-batch window adapts to the arrival rate.
"""

import asyncio
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.api import PPREngine
from repro.core.result import PPRResult
from repro.errors import (
    DeadlineExceeded,
    ParameterError,
    ServerOverloadedError,
)
from repro.graph.build import paper_example_graph
from repro.graph.dynamic import DynamicGraph
from repro.serving import AsyncFrontDoor, EngineServer
from repro.serving.scheduler import ServedResult


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def server():
    with EngineServer(paper_example_graph(), seed=3, window=0.001) as srv:
        yield srv


class SlowBackend:
    """A backend whose every answer takes ``delay`` seconds."""

    def __init__(self, delay: float) -> None:
        self.delay = delay
        self.graph_version = 0

    def submit(
        self, source, method="powerpush", *, fresh=False, deadline=None,
        **params,
    ) -> Future:
        future: Future = Future()
        dummy = PPRResult(
            estimate=np.zeros(4),
            residue=None,
            source=int(source),
            alpha=0.2,
            method="dummy",
        )

        def fire() -> None:
            if future.set_running_or_notify_cancel():
                future.set_result(
                    ServedResult(
                        result=dummy, version=0, cache_hit=False,
                        batch_size=1, deadline=deadline,
                    )
                )

        threading.Timer(self.delay, fire).start()
        return future

    def stats(self):
        return {}


class TestValidation:
    def test_rejects_bad_parameters(self, server):
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, slo_ms=0.0)
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, deadline_ms=-1.0)
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, max_inflight=0)
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, ewma_alpha=0.0)
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, window_min=0.5, window_max=0.1)
        with pytest.raises(ParameterError):
            AsyncFrontDoor(server, target_batch=0)


class TestByteIdentity:
    def test_answers_match_sync_path(self, server):
        door = AsyncFrontDoor(server)

        async def drive():
            return await asyncio.gather(
                *[
                    door.submit(s, "powerpush", l1_threshold=1e-8)
                    for s in range(5)
                ]
            )

        answers = run(drive())
        reference = PPREngine(paper_example_graph(), seed=3)
        for source, served in enumerate(answers):
            expected = reference.query(
                source, "powerpush", l1_threshold=1e-8
            )
            np.testing.assert_array_equal(
                served.result.estimate, expected.estimate
            )
            assert served.degraded is False

    def test_query_is_an_alias_of_submit(self, server):
        door = AsyncFrontDoor(server)
        a = run(door.query(0, "powerpush", l1_threshold=1e-8))
        b = run(door.submit(0, "powerpush", l1_threshold=1e-8))
        np.testing.assert_array_equal(
            a.result.estimate, b.result.estimate
        )


class TestDeadlines:
    def test_spent_budget_rejected_before_admission(self, server):
        door = AsyncFrontDoor(server, deadline_ms=1e-7)

        async def drive():
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                # The per-call budget overrides the default; this one
                # cannot even cover the submit itself.
                await door.submit(0, deadline_ms=1e-7)

        run(drive())
        assert door.stats.deadline_rejected == 1
        assert door.stats.completed == 0

    def test_deadline_expiring_during_await_raises(self):
        door = AsyncFrontDoor(SlowBackend(0.5))
        began = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            run(door.submit(0, deadline_ms=50.0))
        assert time.monotonic() - began < 0.45  # failed at ~50ms, not 500
        assert door.stats.deadline_expired == 1
        assert door.inflight == 0

    def test_deadline_carried_on_the_answer(self, server):
        door = AsyncFrontDoor(server, deadline_ms=60_000.0)
        served = run(door.submit(0, "powerpush", l1_threshold=1e-8))
        assert served.deadline is not None


class TestShedding:
    def test_inflight_bound_sheds(self):
        door = AsyncFrontDoor(SlowBackend(0.3), max_inflight=1)

        async def drive():
            first = asyncio.ensure_future(door.submit(0))
            await asyncio.sleep(0.05)  # let the first occupy the slot
            with pytest.raises(ServerOverloadedError):
                await door.submit(1)
            return await first

        served = run(drive())
        assert served.result.source == 0
        assert door.stats.shed == 1
        assert door.stats.completed == 1


def _overloaded_door(server, **kwargs):
    """A door whose p99 predictor is live and guaranteed over the SLO:
    16 full-fidelity completions warm the estimator, and the SLO is
    set below any real solve latency."""
    door = AsyncFrontDoor(
        server,
        slo_ms=1e-3,
        degrade_params={"l1_threshold": 1e-3},
        **kwargs,
    )

    async def warm():
        # fresh=True keeps every warm-up a genuine solve (no result
        # cache, no coalescing), so each feeds the latency window.
        for s in range(16):
            await door.submit(s % 5, "powerpush",
                              fresh=True, l1_threshold=1e-7)

    run(warm())
    assert door.stats.degraded == 0  # predictor silent during warm-up
    return door


class TestDegradation:
    def test_overload_degrades_to_cheaper_params(self, server):
        door = _overloaded_door(server)
        served = run(door.submit(3, "powerpush", l1_threshold=1e-8))
        assert served.degraded is True
        # Byte-identical to the sync path for the degraded request.
        reference = PPREngine(paper_example_graph(), seed=3)
        expected = reference.query(3, "powerpush", l1_threshold=1e-3)
        np.testing.assert_array_equal(
            served.result.estimate, expected.estimate
        )

    def test_degraded_cache_serves_version_valid_repeats(self, server):
        door = _overloaded_door(server)
        first = run(door.submit(3, "powerpush", l1_threshold=1e-8))
        again = run(door.submit(3, "powerpush", l1_threshold=1e-8))
        assert door.stats.degraded_cache_hits == 1
        np.testing.assert_array_equal(
            first.result.estimate, again.result.estimate
        )

    def test_update_invalidates_degraded_cache(self):
        with EngineServer(
            DynamicGraph(paper_example_graph()), seed=3, window=0.001
        ) as server:
            self._check_update_invalidation(server)

    @staticmethod
    def _check_update_invalidation(server):
        door = _overloaded_door(server)
        first = run(door.submit(3, "powerpush", l1_threshold=1e-8))

        async def bump_and_resubmit():
            version = await door.apply_updates([("+", 0, 4)])
            served = await door.submit(3, "powerpush", l1_threshold=1e-8)
            return version, served

        version, served = run(bump_and_resubmit())
        # Recomputed at the new version, not served from the old one.
        assert served.version == version > first.version
        assert door.stats.degraded_cache_hits == 0

    def test_degraded_cache_survives_respawn_only_on_version_match(self):
        # A respawned backend re-attaches at the journal-replayed
        # version.  If that matches the entry's stamp the cached
        # degraded answer is still valid; if the backend came back at
        # a newer version (updates landed while it was down), the
        # entry must be evicted, never served.
        backend = SlowBackend(0.0)
        door = AsyncFrontDoor(backend)
        dummy = PPRResult(
            estimate=np.zeros(4),
            residue=None,
            source=3,
            alpha=0.2,
            method="dummy",
        )
        entry = ServedResult(
            result=dummy, version=0, cache_hit=False, batch_size=1,
            degraded=True,
        )
        door._degraded_cache[3] = entry

        assert backend.graph_version == 0
        assert door._degraded_hit(3) is entry
        assert door.stats.degraded_cache_hits == 1

        backend.graph_version = 1  # respawn landed on a newer version
        assert door._degraded_hit(3) is None
        assert 3 not in door._degraded_cache  # evicted, not retried
        assert door.stats.degraded_cache_hits == 1

    def test_periodic_probe_keeps_the_predictor_live(self, server):
        door = _overloaded_door(server)

        async def flood():
            for s in range(16):
                await door.submit(s % 5, "powerpush", l1_threshold=1e-8)

        run(flood())
        # Every ~16th overloaded request runs full fidelity so the
        # estimator can observe recovery.
        assert door.stats.probes >= 1
        assert door.stats.degraded >= 10

    def test_no_degraded_tier_sheds_instead(self, server):
        door = AsyncFrontDoor(server, slo_ms=1e-3)

        async def warm_then_overflow():
            for s in range(16):
                await door.submit(s % 5, "powerpush",
                                  fresh=True, l1_threshold=1e-7)
            with pytest.raises(ServerOverloadedError):
                await door.submit(0, "powerpush", l1_threshold=1e-8)

        run(warm_then_overflow())
        assert door.stats.shed == 1


class TestAdaptiveWindow:
    def test_window_tracks_arrival_rate(self, server):
        door = AsyncFrontDoor(
            server, window_min=0.0001, window_max=0.05, target_batch=8
        )

        async def drive():
            for s in range(24):
                await door.submit(s % 5, "powerpush", l1_threshold=1e-8)

        run(drive())
        assert door.stats.window_updates >= 1
        assert 0.0001 <= server.scheduler.window <= 0.05

    def test_snapshot_reports_counters_and_window(self, server):
        door = AsyncFrontDoor(server)
        run(door.submit(0, "powerpush", l1_threshold=1e-8))
        snap = door.snapshot()
        assert snap["completed"] == 1
        assert snap["inflight"] == 0
        assert snap["window"] == server.scheduler.window
        assert door.server_stats()["requests"] >= 1
