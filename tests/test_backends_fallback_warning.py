"""Thread-safety of the backend registry's missing-dependency fallback.

``get_backend("numba")`` without numba installed must degrade to the
numpy reference with exactly one RuntimeWarning per process, no matter
how many threads race the first lookup — and the warning must be
emitted outside the registry lock (a hung or re-entrant warning filter
must not deadlock backend resolution).
"""

from __future__ import annotations

import threading
import warnings

import pytest

import repro.backends as backends
from repro.backends import NumpyBackend, get_backend
from repro.backends import numba_backend as numba_module


@pytest.fixture
def numba_missing(monkeypatch):
    """Simulate an environment without the optional numba extra."""
    monkeypatch.setattr(numba_module, "NUMBA_AVAILABLE", False)
    backends._reset_backend_state()
    yield
    backends._reset_backend_state()


def test_fallback_serves_numpy_reference(numba_missing):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = get_backend("numba")
    assert isinstance(backend, NumpyBackend)
    assert len(caught) == 1
    assert issubclass(caught[0].category, RuntimeWarning)
    assert "falling back" in str(caught[0].message)


def test_fallback_warns_exactly_once_across_threads(numba_missing):
    num_threads = 16
    barrier = threading.Barrier(num_threads)
    results: list[object] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def lookup() -> None:
        try:
            barrier.wait(timeout=10)
            backend = get_backend("numba")
            with lock:
                results.append(backend)
        except BaseException as exc:  # pragma: no cover - failure path
            with lock:
                errors.append(exc)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        threads = [
            threading.Thread(target=lookup) for _ in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
    assert not errors
    assert len(results) == num_threads
    assert all(isinstance(backend, NumpyBackend) for backend in results)
    fallback_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(fallback_warnings) == 1


def test_warning_emitted_outside_registry_lock(numba_missing):
    """A warning filter that touches the registry must not deadlock."""
    observed: list[bool] = []

    original_warn = warnings.warn

    def registry_touching_warn(*args, **kwargs):
        # If get_backend still held the registry lock here, this
        # non-blocking acquire would fail.
        acquired = backends._LOCK.acquire(blocking=False)
        if acquired:
            backends._LOCK.release()
        observed.append(acquired)
        return original_warn(*args, **kwargs)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            warnings.warn = registry_touching_warn
            backend = get_backend("numba")
        finally:
            warnings.warn = original_warn
    assert isinstance(backend, NumpyBackend)
    assert observed == [True]
