"""Block dispatch through the registry, the engine, and the scheduler.

The serving contract: ``batch_query`` auto-selects the block solver
for >= 2 high-precision PowerPush sources, a coalesced scheduler
window therefore runs as one block solve, and every answer stays
byte-identical to the per-source path no matter which layer batched
it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PPREngine, get_solver, solve, solve_block
from repro.errors import ParameterError
from repro.instrumentation.tracing import ConvergenceTrace
from repro.serving.scheduler import QueryScheduler

SOURCES = [0, 7, 77, 123]
PARAMS = {"l1_threshold": 1e-7}


@pytest.fixture
def engine(medium_graph):
    return PPREngine(medium_graph, alpha=0.2, seed=3)


class TestRegistryBlock:
    def test_powerpush_supports_block(self):
        assert get_solver("powerpush").supports_block
        assert not get_solver("powitr").supports_block

    def test_solve_block_matches_solve(self, medium_graph):
        block = solve_block(medium_graph, SOURCES, "powerpush", **PARAMS)
        for source, row in zip(SOURCES, block):
            single = solve(medium_graph, source, "powerpush", **PARAMS)
            assert np.array_equal(single.estimate, row.estimate)
            assert np.array_equal(single.residue, row.residue)

    def test_solve_block_loops_methods_without_kernel(self, medium_graph):
        block = solve_block(medium_graph, [1, 2], "powitr", **PARAMS)
        single = solve(medium_graph, 1, "powitr", **PARAMS)
        assert np.array_equal(block[0].estimate, single.estimate)
        assert block[0].batch_size == 1  # looped, not block-solved

    def test_block_adapter_rejects_faithful_mode_and_traces(
        self, medium_graph
    ):
        spec = get_solver("powerpush")
        with pytest.raises(ParameterError):
            spec.solve_block(medium_graph, [0, 1], mode="faithful", **PARAMS)
        with pytest.raises(ParameterError):
            spec.solve_block(
                medium_graph, [0, 1], trace=ConvergenceTrace(), **PARAMS
            )

    def test_alias_resolves_to_block_path(self, medium_graph):
        block = solve_block(medium_graph, [0, 1], "pp", **PARAMS)
        assert block[0].batch_size == 2


class TestEngineBatchBlock:
    def test_auto_selected_for_multi_source_powerpush(self, engine):
        results = engine.batch_query(SOURCES, "powerpush", **PARAMS)
        assert engine.block_batches == 1
        assert all(result.batch_size == len(SOURCES) for result in results)
        loop = engine.batch_query(
            SOURCES, "powerpush", block=False, **PARAMS
        )
        assert engine.block_batches == 1  # the loop did not batch
        for a, b in zip(results, loop):
            assert np.array_equal(a.estimate, b.estimate)
            assert np.array_equal(a.residue, b.residue)

    def test_single_source_loops(self, engine):
        engine.batch_query([5], "powerpush", **PARAMS)
        assert engine.block_batches == 0

    def test_faithful_mode_falls_back_to_loop(self, engine):
        results = engine.batch_query(
            [0, 1], "powerpush", mode="faithful", l1_threshold=1e-5
        )
        assert engine.block_batches == 0
        assert results[0].batch_size == 1

    def test_block_true_insists(self, engine):
        engine.batch_query([0, 1], "powerpush", block=True, **PARAMS)
        assert engine.block_batches == 1
        with pytest.raises(ParameterError):
            engine.batch_query([0, 1], "powitr", block=True, **PARAMS)
        with pytest.raises(ParameterError):
            engine.batch_query(
                [0, 1], "powerpush", block=True, mode="faithful", **PARAMS
            )
        with pytest.raises(ParameterError):
            engine.batch_query([0, 1], "incremental", block=True)

    def test_montecarlo_override_is_size_independent(self, engine):
        """block=True/False behave the same for any MC batch shape."""
        for sources in ([4], [4, 5, 6]):
            with pytest.raises(ParameterError):
                engine.batch_query(
                    sources, "montecarlo", block=True, num_walks=50, seed=1
                )
        looped = engine.batch_query(
            [4, 5], "montecarlo", block=False, num_walks=50, seed=1
        )
        auto = engine.batch_query(
            [4, 5], "montecarlo", num_walks=50, seed=1
        )
        # Seeded answers are a pure function of (seed, source), so the
        # forced loop and the vectorised batch agree byte-for-byte.
        for a, b in zip(looped, auto):
            assert np.array_equal(a.estimate, b.estimate)

    def test_block_matches_sequential_queries(self, engine):
        results = engine.batch_query(SOURCES, "powerpush", **PARAMS)
        for source, result in zip(SOURCES, results):
            single = engine.query(source, "powerpush", **PARAMS)
            assert np.array_equal(single.estimate, result.estimate)

    def test_engine_defaults_applied(self, medium_graph):
        engine = PPREngine(
            medium_graph, alpha=0.3, dead_end_policy="uniform-teleport"
        )
        results = engine.batch_query([0, 1], "powerpush", **PARAMS)
        single = solve(
            medium_graph,
            0,
            "powerpush",
            alpha=0.3,
            dead_end_policy="uniform-teleport",
            **PARAMS,
        )
        assert np.array_equal(results[0].estimate, single.estimate)

    def test_stats_record_block_rows(self, engine):
        engine.batch_query(SOURCES, "powerpush", **PARAMS)
        assert engine.stats.queries == len(SOURCES)
        assert "PowerPush" in engine.stats.by_method


class TestSchedulerBlockDispatch:
    def test_coalesced_window_runs_as_one_block_solve(self, engine):
        """A micro-batch window of powerpush requests is one block solve."""
        scheduler = QueryScheduler(engine, start=False)
        futures = [
            scheduler.submit(source, "powerpush", dict(PARAMS))
            for source in SOURCES
        ]
        answered = scheduler.run_pending()
        assert answered == len(SOURCES)
        assert engine.block_batches == 1
        assert scheduler.stats.engine_calls == 1
        for source, future in zip(SOURCES, futures):
            served = future.result(timeout=5)
            assert served.batch_size == len(SOURCES)
            single = engine.query(source, "powerpush", **PARAMS)
            assert np.array_equal(served.result.estimate, single.estimate)
        scheduler.close()

    def test_mixed_methods_split_windows(self, engine):
        scheduler = QueryScheduler(engine, start=False)
        scheduler.submit(0, "powerpush", dict(PARAMS))
        scheduler.submit(1, "powerpush", dict(PARAMS))
        scheduler.submit(2, "powitr", dict(PARAMS))
        scheduler.run_pending()
        assert engine.block_batches == 1  # only the powerpush pair
        scheduler.close()
