"""Unit and contract tests for the FORA, FORA+ and ResAcc baselines."""

import math

import numpy as np
import pytest

from repro.baselines.fora import fora, fora_r_max
from repro.baselines.resacc import resacc
from repro.errors import IndexMismatchError, ParameterError
from repro.metrics.errors import l1_error, max_relative_error
from repro.metrics.ground_truth import ground_truth_ppr
from repro.montecarlo.chernoff import chernoff_walk_count
from repro.walks.index import build_walk_index, fora_plus_walk_counts


class TestForaRMax:
    def test_balancing_value(self, paper_graph):
        w = 400.0
        assert fora_r_max(paper_graph, w) == pytest.approx(
            1.0 / math.sqrt(13 * 400)
        )


class TestForaContract:
    def test_relative_error_contract(self, medium_graph, rng):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 0, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        result = fora(
            medium_graph,
            0,
            epsilon=0.5,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert max_relative_error(result.estimate, truth, mu=mu) <= 0.5

    def test_estimate_near_distribution(self, medium_graph, rng):
        result = fora(
            medium_graph,
            1,
            epsilon=0.3,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert result.estimate.sum() == pytest.approx(1.0, abs=0.05)

    def test_mc_shortcut(self, paper_graph, rng):
        result = fora(paper_graph, 0, epsilon=3.0, mu=0.9, rng=rng)
        assert result.method == "FORA[mc-shortcut]"

    def test_rejects_bad_epsilon(self, paper_graph, rng):
        with pytest.raises(ParameterError):
            fora(paper_graph, 0, epsilon=-0.1, rng=rng)

    def test_method_name(self, medium_graph, rng):
        result = fora(
            medium_graph,
            0,
            epsilon=0.5,
            rng=rng,
            allow_monte_carlo_shortcut=False,
        )
        assert result.method == "FORA"


class TestForaPlus:
    def _index(self, graph, epsilon, rng):
        n = graph.num_nodes
        w = chernoff_walk_count(epsilon, 1.0 / n, p_fail=1.0 / n)
        return build_walk_index(
            graph,
            fora_plus_walk_counts(graph, w),
            rng=rng,
            policy="fora+",
        )

    def test_index_built_for_small_eps_serves_larger(
        self, medium_graph, rng
    ):
        index = self._index(medium_graph, 0.1, rng)
        for epsilon in (0.5, 0.3, 0.1):
            result = fora(
                medium_graph,
                2,
                epsilon=epsilon,
                walk_index=index,
                allow_monte_carlo_shortcut=False,
            )
            assert result.method == "FORA-Index"

    def test_index_built_for_large_eps_fails_smaller(
        self, medium_graph, rng
    ):
        # The eps-dependence weakness Section 6.2 criticises: an index
        # built for eps = 0.5 cannot answer eps = 0.1.
        index = self._index(medium_graph, 0.5, rng)
        with pytest.raises(IndexMismatchError):
            fora(
                medium_graph,
                2,
                epsilon=0.1,
                walk_index=index,
                allow_monte_carlo_shortcut=False,
            )

    def test_index_bigger_than_speedppr_index(self, medium_graph, rng):
        from repro.walks.index import speedppr_walk_counts

        n = medium_graph.num_nodes
        w = chernoff_walk_count(0.1, 1.0 / n, p_fail=1.0 / n)
        fora_counts = fora_plus_walk_counts(medium_graph, w)
        speed_counts = speedppr_walk_counts(medium_graph)
        assert fora_counts.sum() > speed_counts.sum()


class TestResAcc:
    def test_relative_error_contract(self, medium_graph, rng):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 0, l1_threshold=1e-13)
        )
        mu = 1.0 / medium_graph.num_nodes
        result = resacc(medium_graph, 0, epsilon=0.5, rng=rng)
        assert max_relative_error(result.estimate, truth, mu=mu) <= 0.5

    def test_estimate_close_to_fora(self, medium_graph, rng):
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 7, l1_threshold=1e-13)
        )
        res = resacc(medium_graph, 7, epsilon=0.3, rng=rng)
        assert l1_error(res.estimate, truth) < 0.1

    def test_source_residue_accumulated_not_pushed(self, medium_graph, rng):
        result = resacc(medium_graph, 7, epsilon=0.5, rng=rng)
        assert result.residue is not None
        # The returned residue vector excludes the source's mass.
        assert result.residue[7] == 0.0
        assert result.counters.extras.get("resacc_sweeps", 0) > 0

    def test_estimate_near_distribution(self, medium_graph, rng):
        result = resacc(medium_graph, 3, epsilon=0.3, rng=rng)
        assert result.estimate.sum() == pytest.approx(1.0, abs=0.05)

    def test_unbiasedness(self, paper_graph):
        from repro.metrics.ground_truth import exact_ppr_dense

        truth = exact_ppr_dense(paper_graph, 0)
        total = np.zeros(5)
        runs = 30
        for seed in range(runs):
            result = resacc(
                paper_graph,
                0,
                epsilon=0.4,
                rng=np.random.default_rng(seed),
            )
            total += result.estimate
        np.testing.assert_allclose(total / runs, truth, atol=0.02)

    def test_method_name(self, medium_graph, rng):
        assert (
            resacc(medium_graph, 0, epsilon=0.5, rng=rng).method
            == "ResAcc"
        )
