"""Tests for the micro-batching scheduler (:mod:`repro.serving.scheduler`).

Two contracts under test: coalescing never changes an answer (batch
answers are elementwise-equal to sequential ``engine.query`` answers,
including stochastic methods under a fixed seed), and compatible
requests genuinely share engine calls.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PPREngine
from repro.api.engine import per_source_rng
from repro.errors import DeadlineExceeded, ParameterError, UnknownMethodError
from repro.graph.build import paper_example_graph
from repro.serving.scheduler import QueryScheduler


@pytest.fixture
def engine():
    return PPREngine(paper_example_graph(), alpha=0.2, seed=3)


@pytest.fixture
def manual(engine):
    """A scheduler driven deterministically (no worker thread)."""
    scheduler = QueryScheduler(engine, window=0.0, start=False)
    yield scheduler
    scheduler.close()


class TestSubmitValidation:
    def test_unknown_method_raises_at_submit(self, manual):
        with pytest.raises(UnknownMethodError):
            manual.submit(0, "no-such-method")

    def test_unknown_param_raises_at_submit(self, manual):
        with pytest.raises(ParameterError, match="does not accept"):
            manual.submit(0, "powerpush", {"num_walk": 3})

    def test_bad_source_raises_at_submit(self, manual):
        with pytest.raises(Exception):
            manual.submit(99, "powerpush")

    def test_incremental_params_validated(self, manual):
        with pytest.raises(ParameterError, match="incremental"):
            manual.submit(0, "incremental", {"epsilon": 0.5})

    def test_bad_construction_params(self, engine):
        with pytest.raises(ParameterError):
            QueryScheduler(engine, window=-1, start=False)
        with pytest.raises(ParameterError):
            QueryScheduler(engine, max_batch=0, start=False)


class TestCoalescing:
    def test_identical_requests_share_one_solve(self, engine, manual):
        futures = [
            manual.submit(0, "powerpush", {"l1_threshold": 1e-8})
            for _ in range(5)
        ]
        manual.run_pending()
        results = [f.result(0) for f in futures]
        assert manual.stats.engine_calls == 1
        assert manual.stats.engine_sources == 1  # deduped to one slot
        assert engine.stats.queries == 1
        assert all(r.batch_size == 5 for r in results)
        for served in results[1:]:
            assert served.result is results[0].result

    def test_compatible_sources_batch_together(self, manual):
        futures = [
            manual.submit(s, "powerpush", {"l1_threshold": 1e-8})
            for s in (0, 1, 2)
        ]
        manual.run_pending()
        [f.result(0) for f in futures]
        assert manual.stats.engine_calls == 1
        assert manual.stats.engine_sources == 3
        assert manual.stats.batching_factor == pytest.approx(3.0)

    def test_incompatible_params_split_groups(self, manual):
        a = manual.submit(0, "powerpush", {"l1_threshold": 1e-8})
        b = manual.submit(0, "powerpush", {"l1_threshold": 1e-6})
        c = manual.submit(0, "powitr", {"l1_threshold": 1e-8})
        manual.run_pending()
        for future in (a, b, c):
            future.result(0)
        assert manual.stats.engine_calls == 3

    def test_aliases_coalesce_with_canonical_spelling(self, manual):
        a = manual.submit(0, "powerpush", {"l1_threshold": 1e-8})
        b = manual.submit(0, "PP", {"l1_threshold": 1e-8})
        manual.run_pending()
        assert a.result(0).result is b.result(0).result
        assert manual.stats.engine_calls == 1

    def test_fresh_requests_are_not_deduped(self, engine, manual):
        a = manual.submit(0, "montecarlo", {"num_walks": 300}, fresh=True)
        b = manual.submit(0, "montecarlo", {"num_walks": 300}, fresh=True)
        manual.run_pending()
        # both answered by one engine call, but as separate samples
        assert manual.stats.engine_calls == 1
        assert manual.stats.engine_sources == 2
        assert not np.array_equal(
            a.result(0).result.estimate, b.result(0).result.estimate
        )

    def test_max_batch_caps_a_dispatch_round(self, engine):
        scheduler = QueryScheduler(
            engine, window=0.0, max_batch=2, start=False
        )
        futures = [
            scheduler.submit(s, "powerpush", {"l1_threshold": 1e-8})
            for s in (0, 1, 2)
        ]
        scheduler.run_pending()
        [f.result(0) for f in futures]
        assert scheduler.stats.batches == 2
        scheduler.close()


class TestEquivalence:
    """Coalesced answers == sequential query answers (satellite)."""

    def test_deterministic_batch_matches_sequential(self, engine, manual):
        futures = [
            manual.submit(s, "powerpush", {"l1_threshold": 1e-8})
            for s in (0, 1, 2, 3, 4)
        ]
        manual.run_pending()
        reference = PPREngine(paper_example_graph(), alpha=0.2, seed=3)
        for source, future in enumerate(futures):
            expected = reference.query(
                source, "powerpush", l1_threshold=1e-8
            )
            np.testing.assert_array_equal(
                future.result(0).result.estimate, expected.estimate
            )

    def test_seeded_stochastic_batch_matches_sequential(self, manual):
        futures = [
            manual.submit(s, "montecarlo", {"num_walks": 200, "seed": 11})
            for s in (2, 0, 4)
        ]
        manual.run_pending()
        reference = PPREngine(paper_example_graph(), alpha=0.2, seed=99)
        for future, source in zip(futures, (2, 0, 4)):
            expected = reference.query(
                source,
                "montecarlo",
                num_walks=200,
                rng=per_source_rng(11, source),
            )
            np.testing.assert_array_equal(
                future.result(0).result.estimate, expected.estimate
            )


class TestFailureIsolation:
    def test_solve_failure_reaches_the_future_not_the_worker(self, manual):
        # num_walks=-5 passes name validation but fails in the solver.
        future = manual.submit(0, "montecarlo", {"num_walks": -5})
        good = manual.submit(1, "powerpush", {"l1_threshold": 1e-8})
        manual.run_pending()
        with pytest.raises(ParameterError):
            future.result(0)
        assert good.result(0).result.method == "PowerPush"
        assert manual.stats.failures == 1

    def test_cancelled_future_does_not_kill_the_worker(self, engine):
        # A client cancelling its queued future must not take down the
        # dispatch machinery for everyone else.
        with QueryScheduler(engine, window=0.05) as scheduler:
            doomed = scheduler.submit(0, "powerpush", {"l1_threshold": 1e-8})
            assert doomed.cancel()
            survivor = scheduler.submit(
                1, "powerpush", {"l1_threshold": 1e-8}
            )
            assert survivor.result(5.0).result.method == "PowerPush"
            # ...and the scheduler still serves after the cancellation
            later = scheduler.submit(2, "powerpush", {"l1_threshold": 1e-8})
            assert later.result(5.0).result.source == 2

    def test_submit_after_close_raises(self, engine):
        scheduler = QueryScheduler(engine, window=0.0, start=False)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(0, "powerpush")


class TestThreadedWorker:
    def test_concurrent_submitters_all_resolve(self, engine):
        with QueryScheduler(engine, window=0.001) as scheduler:
            results = {}
            mutex = threading.Lock()

            def client(worker_id: int) -> None:
                futures = [
                    scheduler.submit(s, "powerpush", {"l1_threshold": 1e-8})
                    for s in (0, 1, 2, 3)
                ]
                answers = [f.result(5.0) for f in futures]
                with mutex:
                    results[worker_id] = answers

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 6
        baseline = results[0]
        for answers in results.values():
            for mine, reference in zip(answers, baseline):
                np.testing.assert_array_equal(
                    mine.result.estimate, reference.result.estimate
                )
        assert scheduler.stats.answered == 24

    def test_close_drains_pending_futures(self, engine):
        scheduler = QueryScheduler(engine, window=0.05)
        futures = [
            scheduler.submit(s, "powerpush", {"l1_threshold": 1e-8})
            for s in (0, 1)
        ]
        scheduler.close()  # must not abandon queued requests
        for future in futures:
            assert future.result(0).result.method == "PowerPush"


class TestWindowWakeups:
    """The window wait is interruptible — close, a full backlog, or a
    queued deadline all wake it (regression: it used to be a fixed
    ``time.sleep`` that served every wakeup a full window late)."""

    def test_close_interrupts_a_long_window(self, engine):
        scheduler = QueryScheduler(engine, window=30.0)
        future = scheduler.submit(0, "powerpush", {"l1_threshold": 1e-8})
        began = time.monotonic()
        scheduler.close()  # wakes the worker; drains before returning
        assert future.result(0).result.method == "PowerPush"
        assert time.monotonic() - began < 10.0

    def test_full_backlog_dispatches_before_the_window(self, engine):
        scheduler = QueryScheduler(engine, window=30.0, max_batch=2)
        futures = [
            scheduler.submit(s, "powerpush", {"l1_threshold": 1e-8})
            for s in (0, 1)
        ]
        # A whole dispatch round is queued: waiting longer could add no
        # company, so both answers arrive long before the 30s window.
        for future in futures:
            assert future.result(10.0).result.method == "PowerPush"
        scheduler.close()

    def test_queued_deadline_wakes_the_window(self, engine):
        scheduler = QueryScheduler(engine, window=30.0)
        deadline = time.monotonic() + 0.1
        future = scheduler.submit(
            0, "powerpush", {"l1_threshold": 1e-8}, deadline=deadline
        )
        with pytest.raises(DeadlineExceeded):
            future.result(10.0)  # fails ~0.1s in, not a window later
        assert scheduler.stats.expired == 1
        scheduler.close()

    def test_shrinking_the_window_applies_mid_wait(self, engine):
        scheduler = QueryScheduler(engine, window=30.0)
        future = scheduler.submit(0, "powerpush", {"l1_threshold": 1e-8})
        scheduler.set_window(0.0)  # worker re-reads the window when woken
        assert future.result(10.0).result.method == "PowerPush"
        assert scheduler.window == 0.0
        scheduler.close()


class TestDeadlines:
    def test_already_expired_submit_raises(self, manual):
        with pytest.raises(DeadlineExceeded, match="before submit"):
            manual.submit(
                0,
                "powerpush",
                {"l1_threshold": 1e-8},
                deadline=time.monotonic() - 1.0,
            )
        assert manual.stats.submitted == 0

    def test_expired_in_queue_fails_fast_without_engine_call(
        self, engine, manual
    ):
        deadline = time.monotonic() + 0.01
        doomed = manual.submit(
            0, "powerpush", {"l1_threshold": 1e-8}, deadline=deadline
        )
        live = manual.submit(1, "powerpush", {"l1_threshold": 1e-8})
        time.sleep(0.02)
        manual.run_pending()
        with pytest.raises(DeadlineExceeded, match="while queued"):
            doomed.result(0)
        # The expired request never reached the engine or a batch slot;
        # its live groupmate was answered normally.
        assert live.result(0).result.method == "PowerPush"
        assert engine.stats.queries == 1
        assert manual.stats.expired == 1

    def test_deadline_stamped_on_served_result(self, manual):
        deadline = time.monotonic() + 60.0
        stamped = manual.submit(
            0, "powerpush", {"l1_threshold": 1e-8}, deadline=deadline
        )
        plain = manual.submit(0, "powerpush", {"l1_threshold": 1e-8})
        manual.run_pending()
        assert stamped.result(0).deadline == deadline
        assert plain.result(0).deadline is None
        # Stamping wraps the shared answer without copying it: both
        # futures still resolve to one PPRResult object.
        assert stamped.result(0).result is plain.result(0).result
        assert manual.stats.engine_calls == 1

    def test_set_window_validates(self, engine):
        scheduler = QueryScheduler(engine, window=0.002, start=False)
        assert scheduler.window == 0.002
        scheduler.set_window(0.01)
        assert scheduler.window == 0.01
        with pytest.raises(ParameterError):
            scheduler.set_window(-0.001)
        scheduler.close()


# ---------------------------------------------------------------------------
# Randomized interleavings (satellite: property tests)
# ---------------------------------------------------------------------------

_requests = st.lists(
    st.tuples(
        st.integers(0, 4),  # source
        st.sampled_from(["powerpush", "montecarlo"]),
        st.integers(0, 2),  # seed choice for stochastic
        st.booleans(),  # dispatch between submissions?
    ),
    min_size=1,
    max_size=12,
)


class TestRandomizedSubmissions:
    @settings(max_examples=25, deadline=None)
    @given(requests=_requests)
    def test_any_interleaving_matches_sequential_answers(self, requests):
        graph = paper_example_graph()
        engine = PPREngine(graph, alpha=0.2, seed=3)
        reference = PPREngine(graph, alpha=0.2, seed=77)
        scheduler = QueryScheduler(engine, window=0.0, start=False)
        futures = []
        for source, method, seed, dispatch_now in requests:
            if method == "powerpush":
                params = {"l1_threshold": 1e-7}
            else:
                params = {"num_walks": 60, "seed": seed}
            futures.append((source, method, seed, scheduler.submit(
                source, method, params
            )))
            if dispatch_now:
                scheduler.run_pending()
        scheduler.run_pending()
        for source, method, seed, future in futures:
            served = future.result(0)
            if method == "powerpush":
                expected = reference.query(
                    source, "powerpush", l1_threshold=1e-7
                )
            else:
                expected = reference.query(
                    source,
                    "montecarlo",
                    num_walks=60,
                    rng=per_source_rng(seed, source),
                )
            np.testing.assert_array_equal(
                served.result.estimate, expected.estimate
            )
        scheduler.close()
