"""Unit tests for report rendering and experiment configuration."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.config import (
    ExperimentConfig,
    bench_config,
    full_config,
    query_sources,
)
from repro.experiments.report import (
    ascii_chart,
    format_bytes,
    format_ratio,
    format_seconds,
    format_series,
    format_table,
)
from repro.graph.build import cycle_graph


class TestFormatters:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", "1"], ["long-name", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_ratio(self):
        assert format_ratio(2.0, 1.0) == "2.0x"
        assert format_ratio(170.0, 10.0) == "17x"
        assert format_ratio(1.0, 0.0) == "n/a"

    def test_format_seconds(self):
        assert format_seconds(0.5e-6).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.0) == "2.00s"
        assert format_seconds(500.0) == "500s"

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.00KB"
        assert format_bytes(8.01 * 1024 * 1024).startswith("8.0")

    def test_ascii_chart_renders_markers(self):
        chart = ascii_chart(
            {
                "a": ([1, 2, 3], [1.0, 0.1, 0.01]),
                "b": ([1, 2, 3], [0.5, 0.05, 0.005]),
            },
            title="demo",
            width=20,
            height=6,
        )
        assert "demo" in chart
        assert "*" in chart and "o" in chart
        assert "legend" in chart

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({}, title="x")

    def test_ascii_chart_handles_zeros_on_log_axis(self):
        chart = ascii_chart({"a": ([1, 2], [0.0, 1.0])}, log_y=True)
        assert "legend" in chart

    def test_format_series_downsamples(self):
        xs = list(range(100))
        ys = [1.0 / (i + 1) for i in xs]
        text = format_series({"curve": (xs, ys)}, max_points=5)
        assert text.count("(") <= 12


class TestConfig:
    def test_default_l1_threshold_rule(self):
        config = ExperimentConfig()
        graph = cycle_graph(10)
        assert config.l1_threshold(graph) == pytest.approx(1e-8)

    def test_full_config_uses_30_sources(self):
        assert full_config().num_sources == 30

    def test_bench_config_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "dblp-s, orkut-s")
        monkeypatch.setenv("REPRO_BENCH_SOURCES", "7")
        config = bench_config()
        assert config.datasets == ("dblp-s", "orkut-s")
        assert config.num_sources == 7

    def test_bench_config_full_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert bench_config().num_sources == 30

    def test_bench_config_rejects_unknown_dataset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "nope-s")
        with pytest.raises(ParameterError):
            bench_config()

    def test_bench_config_rejects_bad_sources(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SOURCES", "zero")
        with pytest.raises(ParameterError):
            bench_config()

    def test_query_sources_deterministic(self):
        graph = cycle_graph(50)
        a = query_sources(graph, 5, seed=1)
        b = query_sources(graph, 5, seed=1)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 50

    def test_query_sources_rejects_zero(self):
        with pytest.raises(ParameterError):
            query_sources(cycle_graph(5), 0)
