"""Unit tests for the shared Monte-Carlo refinement phase (Eq. 13-14)."""

import numpy as np
import pytest

from repro.core.mc_phase import monte_carlo_refine, required_walks
from repro.core.residues import PushState
from repro.errors import IndexMismatchError, ParameterError
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense
from repro.walks.index import build_walk_index, speedppr_walk_counts


class TestRequiredWalks:
    def test_ceil_of_r_times_w(self):
        residue = np.array([0.0, 0.001, 0.0101, 0.5])
        walks = required_walks(residue, 100)
        assert walks.tolist() == [0, 1, 2, 50]

    def test_rejects_bad_w(self):
        with pytest.raises(ParameterError):
            required_walks(np.array([0.1]), 0)


class TestRefinement:
    def _half_pushed_state(self, graph):
        """A state with some reserve and residue spread around."""
        state = PushState(graph, 0)
        state.push(0)
        state.push(2)
        return state

    def test_estimate_improves_on_reserve_alone(self, paper_graph, rng):
        truth = exact_ppr_dense(paper_graph, 0)
        state = self._half_pushed_state(paper_graph)
        estimate = monte_carlo_refine(
            paper_graph,
            0,
            0.2,
            state.reserve,
            state.residue,
            50_000,
            rng=rng,
        )
        assert l1_error(estimate, truth) < l1_error(state.reserve, truth)
        assert estimate.sum() == pytest.approx(1.0, abs=0.01)

    def test_unbiasedness(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0)
        state = self._half_pushed_state(paper_graph)
        total = np.zeros(5)
        runs = 30
        for seed in range(runs):
            total += monte_carlo_refine(
                paper_graph,
                0,
                0.2,
                state.reserve,
                state.residue,
                2000,
                rng=np.random.default_rng(seed),
            )
        np.testing.assert_allclose(total / runs, truth, atol=0.01)

    def test_inputs_not_mutated(self, paper_graph, rng):
        state = self._half_pushed_state(paper_graph)
        reserve_before = state.reserve.copy()
        residue_before = state.residue.copy()
        monte_carlo_refine(
            paper_graph,
            0,
            0.2,
            state.reserve,
            state.residue,
            1000,
            rng=rng,
        )
        np.testing.assert_array_equal(state.reserve, reserve_before)
        np.testing.assert_array_equal(state.residue, residue_before)

    def test_zero_residue_returns_reserve(self, paper_graph, rng):
        reserve = np.full(5, 0.2)
        estimate = monte_carlo_refine(
            paper_graph, 0, 0.2, reserve, np.zeros(5), 1000, rng=rng
        )
        np.testing.assert_array_equal(estimate, reserve)

    def test_requires_rng_without_index(self, paper_graph):
        with pytest.raises(ParameterError):
            monte_carlo_refine(
                paper_graph, 0, 0.2, np.zeros(5), np.ones(5) / 5, 100
            )

    def test_counters_updated(self, paper_graph, rng):
        state = self._half_pushed_state(paper_graph)
        monte_carlo_refine(
            paper_graph,
            0,
            0.2,
            state.reserve,
            state.residue,
            1000,
            rng=rng,
            counters=state.counters,
        )
        assert state.counters.random_walks > 0


class TestRefinementWithIndex:
    def test_index_path_unbiased(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0)
        state = PushState(paper_graph, 0)
        state.push(0)
        # Residues <= 0.4; an index with K_v = d_v covers
        # W_v = ceil(r_v * W) for W small enough.
        total = np.zeros(5)
        runs = 30
        for seed in range(runs):
            index = build_walk_index(
                paper_graph,
                speedppr_walk_counts(paper_graph) * 3,
                rng=np.random.default_rng(seed),
            )
            total += monte_carlo_refine(
                paper_graph,
                0,
                0.2,
                state.reserve,
                state.residue,
                10,
                walk_index=index,
            )
        np.testing.assert_allclose(total / runs, truth, atol=0.06)

    def test_insufficient_index_raises(self, paper_graph, rng):
        state = PushState(paper_graph, 0)
        state.push(0)
        index = build_walk_index(
            paper_graph, np.ones(5, dtype=np.int64), rng=rng
        )
        with pytest.raises(IndexMismatchError):
            monte_carlo_refine(
                paper_graph,
                0,
                0.2,
                state.reserve,
                state.residue,
                1_000_000,
                walk_index=index,
                on_insufficient="error",
            )

    def test_insufficient_index_caps(self, paper_graph, rng):
        state = PushState(paper_graph, 0)
        state.push(0)
        index = build_walk_index(
            paper_graph, np.ones(5, dtype=np.int64), rng=rng
        )
        counters = state.counters
        estimate = monte_carlo_refine(
            paper_graph,
            0,
            0.2,
            state.reserve,
            state.residue,
            1_000_000,
            walk_index=index,
            counters=counters,
            on_insufficient="cap",
        )
        assert estimate.sum() == pytest.approx(1.0, abs=1e-9)
        assert counters.extras.get("index_capped_nodes", 0) > 0

    def test_alpha_mismatch_rejected(self, paper_graph, rng):
        index = build_walk_index(
            paper_graph,
            speedppr_walk_counts(paper_graph),
            alpha=0.5,
            rng=rng,
        )
        with pytest.raises(IndexMismatchError):
            monte_carlo_refine(
                paper_graph,
                0,
                0.2,
                np.zeros(5),
                np.ones(5) / 5,
                10,
                walk_index=index,
            )
