"""Unit tests for PushState and the scalar push primitive."""

import numpy as np
import pytest

from repro.core.residues import PushState
from repro.errors import NodeNotFoundError, ParameterError
from repro.graph.build import from_edges


class TestInitialState:
    def test_initial_vectors(self, paper_graph):
        state = PushState(paper_graph, 0)
        assert state.residue[0] == 1.0
        assert state.residue.sum() == 1.0
        assert state.reserve.sum() == 0.0
        assert state.r_sum == 1.0

    def test_rejects_bad_alpha(self, paper_graph):
        with pytest.raises(ParameterError):
            PushState(paper_graph, 0, alpha=0.0)
        with pytest.raises(ParameterError):
            PushState(paper_graph, 0, alpha=1.0)

    def test_rejects_bad_source(self, paper_graph):
        with pytest.raises(NodeNotFoundError):
            PushState(paper_graph, 17)

    def test_rejects_bad_policy(self, paper_graph):
        with pytest.raises(ParameterError):
            PushState(paper_graph, 0, dead_end_policy="nope")  # type: ignore[arg-type]


class TestPushPrimitive:
    def test_first_push_matches_figure2(self, paper_graph):
        state = PushState(paper_graph, 0, alpha=0.2)
        old = state.push(0)
        assert old == 1.0
        assert state.reserve[0] == pytest.approx(0.2)
        assert state.residue[1] == pytest.approx(0.4)
        assert state.residue[2] == pytest.approx(0.4)
        assert state.residue[0] == 0.0

    def test_push_conserves_mass(self, paper_graph):
        state = PushState(paper_graph, 0)
        for node in (0, 2, 1, 3, 4, 1):
            state.push(node)
            assert state.mass_total() == pytest.approx(1.0, abs=1e-12)

    def test_push_zero_residue_is_noop(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.push(3)  # node 3 has no residue yet
        assert state.reserve[3] == 0.0
        assert state.r_sum == 1.0

    def test_incremental_r_sum_tracks_exact(self, paper_graph, rng):
        state = PushState(paper_graph, 0)
        for _ in range(50):
            state.push(int(rng.integers(0, 5)))
        assert state.r_sum == pytest.approx(state.residue.sum(), abs=1e-12)

    def test_self_loop_mass_not_lost(self):
        graph = from_edges(
            [(0, 0), (0, 1), (1, 0)], drop_self_loops=False
        )
        state = PushState(graph, 0, alpha=0.2)
        state.push(0)
        # 0.8 split between the self-loop and node 1.
        assert state.residue[0] == pytest.approx(0.4)
        assert state.residue[1] == pytest.approx(0.4)
        assert state.mass_total() == pytest.approx(1.0)

    def test_counters_track_degrees(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.push(0)
        assert state.counters.pushes == 1
        assert state.counters.residue_updates == 2  # d(v1) = 2
        state.push(1)
        assert state.counters.residue_updates == 6  # + d(v2) = 4


class TestDeadEndPolicies:
    def test_redirect_to_source(self, dead_end_graph):
        state = PushState(dead_end_graph, 0)
        state.push(0)  # each leaf receives 0.8 / 4 = 0.2
        state.push(1)  # leaf: (1 - alpha) * 0.2 = 0.16 back to source
        assert state.residue[0] == pytest.approx(0.16)
        assert state.mass_total() == pytest.approx(1.0)

    def test_uniform_teleport(self, dead_end_graph):
        state = PushState(
            dead_end_graph, 0, dead_end_policy="uniform-teleport"
        )
        state.push(0)
        state.push(1)  # spreads (1 - alpha) * 0.2 = 0.16 over all 5
        assert state.residue[4] == pytest.approx(0.2 + 0.16 / 5)
        assert state.mass_total() == pytest.approx(1.0)

    def test_self_loop_policy_requires_structural_fix(self, dead_end_graph):
        state = PushState(dead_end_graph, 0, dead_end_policy="self-loop")
        state.push(0)
        with pytest.raises(ParameterError, match="structural"):
            state.push(1)


class TestActivity:
    def test_active_definition(self, paper_graph):
        state = PushState(paper_graph, 0)
        # r(s, v1) = 1 > d_v1 * r_max = 2 * 0.4 -> active
        assert state.is_active(0, 0.4)
        # 1 > 2 * 0.5 is false -> inactive
        assert not state.is_active(0, 0.5)

    def test_active_mask_matches_scalar(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.push(0)
        r_max = 0.15
        mask = state.active_mask(r_max)
        for v in range(5):
            assert mask[v] == state.is_active(v, r_max)

    def test_dead_end_uses_conceptual_degree_one(self, dead_end_graph):
        state = PushState(dead_end_graph, 0)
        state.push(0)  # each leaf now holds r = 0.2
        # Conceptual out-degree of a dead end is 1 (edge to the source):
        # active iff r > 1 * r_max.
        assert state.is_active(1, r_max=0.1)
        assert not state.is_active(1, r_max=0.25)

    def test_dead_end_conceptual_degree_uniform_policy(self, dead_end_graph):
        state = PushState(
            dead_end_graph, 0, dead_end_policy="uniform-teleport"
        )
        assert int(state.effective_out_degree[1]) == dead_end_graph.num_nodes

    def test_active_nodes_sorted(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.push(0)
        nodes = state.active_nodes(0.01)
        assert nodes.tolist() == sorted(nodes.tolist())


class TestInvariantChecks:
    def test_check_invariants_passes(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.push(0)
        state.check_invariants()

    def test_check_invariants_catches_corruption(self, paper_graph):
        state = PushState(paper_graph, 0)
        state.residue[2] = -0.5
        with pytest.raises(AssertionError):
            state.check_invariants()
