"""Tests for the versioned result cache (:mod:`repro.serving.cache`).

The invariant the randomized suite drills: under *any* interleaving of
fills, lookups, version bumps, invalidations, and evictions, a lookup
presented with the current graph version never returns a result stored
at a different version.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import PPRResult
from repro.errors import ParameterError, UnknownMethodError
from repro.serving.cache import ResultCache, make_cache_key


def result_for(source: int, version: int) -> PPRResult:
    """A distinguishable dummy result (estimate encodes its version)."""
    estimate = np.zeros(4)
    estimate[0] = version
    return PPRResult(
        estimate=estimate,
        residue=None,
        source=source,
        alpha=0.2,
        method="dummy",
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMakeCacheKey:
    def test_canonicalises_aliases_and_param_order(self):
        a = make_cache_key(3, "powerpush", {"alpha": 0.2, "l1_threshold": 1e-8})
        b = make_cache_key(3, "PP", {"l1_threshold": 1e-8, "alpha": 0.2})
        assert a == b

    def test_alias_implied_params_fold_in(self):
        plus = make_cache_key(0, "fora+", {"epsilon": 0.5})
        explicit = make_cache_key(0, "fora", {"epsilon": 0.5, "use_index": True})
        assert plus == explicit
        assert plus != make_cache_key(0, "fora", {"epsilon": 0.5})

    def test_distinct_sources_and_params_get_distinct_keys(self):
        base = make_cache_key(0, "powerpush", {"l1_threshold": 1e-8})
        assert base != make_cache_key(1, "powerpush", {"l1_threshold": 1e-8})
        assert base != make_cache_key(0, "powerpush", {"l1_threshold": 1e-6})

    def test_incremental_method_is_cacheable(self):
        key = make_cache_key(2, "incremental", {"l1_threshold": 1e-8})
        assert key[0] == "incremental"

    def test_live_objects_are_uncacheable(self):
        rng = np.random.default_rng(0)
        assert make_cache_key(0, "montecarlo", {"rng": rng}) is None

    def test_unknown_method_raises(self):
        with pytest.raises(UnknownMethodError):
            make_cache_key(0, "no-such-method", {})


class TestResultCacheBasics:
    def test_roundtrip_and_lru_eviction(self):
        cache = ResultCache(2)
        keys = [make_cache_key(s, "powerpush", {}) for s in (0, 1, 2)]
        cache.put(keys[0], result_for(0, 0), 0)
        cache.put(keys[1], result_for(1, 0), 0)
        assert cache.get(keys[0], 0) is not None  # refresh 0's recency
        cache.put(keys[2], result_for(2, 0), 0)  # evicts 1, not 0
        assert cache.get(keys[1], 0) is None
        assert cache.get(keys[0], 0) is not None
        assert cache.stats.evictions == 1

    def test_stale_version_never_served(self):
        cache = ResultCache(8)
        key = make_cache_key(0, "powerpush", {})
        cache.put(key, result_for(0, 3), 3)
        assert cache.get(key, 4) is None
        assert cache.stats.stale_drops == 1
        # the stale entry is gone for good, even for version 3 again
        assert cache.get(key, 3) is None

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(8, ttl=10.0, clock=clock)
        key = make_cache_key(0, "powerpush", {})
        cache.put(key, result_for(0, 0), 0)
        clock.now = 9.9
        assert cache.get(key, 0) is not None
        clock.now = 10.0
        assert cache.get(key, 0) is None
        assert cache.stats.expirations == 1

    def test_invalidate_with_version_drops_only_stale(self):
        cache = ResultCache(8)
        old = make_cache_key(0, "powerpush", {})
        new = make_cache_key(1, "powerpush", {})
        cache.put(old, result_for(0, 1), 1)
        cache.put(new, result_for(1, 2), 2)
        assert cache.invalidate(2) == 1
        assert cache.get(new, 2) is not None
        assert len(cache) == 1

    def test_invalidate_none_clears(self):
        cache = ResultCache(8)
        cache.put(make_cache_key(0, "powerpush", {}), result_for(0, 0), 0)
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ResultCache(8)
        key = make_cache_key(0, "powerpush", {})
        assert cache.stats.hit_rate == 0.0
        cache.put(key, result_for(0, 0), 0)
        cache.get(key, 0)
        cache.get(make_cache_key(1, "powerpush", {}), 0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            ResultCache(0)
        with pytest.raises(ParameterError):
            ResultCache(4, ttl=0.0)


class TestTTLVersionRaces:
    """TTL expiry racing version invalidation (satellite: the two drop
    paths share one mutex and one entry map; no interleaving of
    concurrent get/put/invalidate/clock-advance may serve an entry
    that is stale *or* expired, and no drop is double-counted)."""

    def test_simultaneously_stale_and_expired_drops_exactly_once(self):
        clock = FakeClock()
        cache = ResultCache(8, ttl=5.0, clock=clock)
        key = make_cache_key(0, "powerpush", {})
        cache.put(key, result_for(0, 0), 0)
        clock.now = 50.0  # long expired...
        assert cache.get(key, 1) is None  # ...and version-stale
        assert cache.stats.stale_drops + cache.stats.expirations == 1
        assert len(cache) == 0

    def test_reput_after_expiry_serves_fresh_entry(self):
        clock = FakeClock()
        cache = ResultCache(8, ttl=5.0, clock=clock)
        key = make_cache_key(0, "powerpush", {})
        cache.put(key, result_for(0, 0), 0)
        clock.now = 6.0
        assert cache.get(key, 0) is None  # expired
        cache.put(key, result_for(0, 0), 0)  # re-filled at the new time
        assert cache.get(key, 0) is not None
        assert cache.stats.expirations == 1

    def test_concurrent_get_put_with_racing_expiry_and_invalidation(self):
        clock = FakeClock()
        cache = ResultCache(16, ttl=4.0, clock=clock)
        keys = [make_cache_key(s, "powerpush", {}) for s in range(6)]
        version = [0]
        stop = threading.Event()
        errors: list[BaseException] = []

        def putter() -> None:
            try:
                while not stop.is_set():
                    v = version[0]
                    for s, key in enumerate(keys):
                        cache.put(key, result_for(s, v), v)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def getter() -> None:
            try:
                while not stop.is_set():
                    v = version[0]
                    for key in keys:
                        hit = cache.get(key, v)
                        # The one invariant every interleaving must
                        # keep: a hit is stamped exactly the version
                        # the lookup asked for.
                        if hit is not None and hit.estimate[0] != v:
                            raise AssertionError(
                                f"version {hit.estimate[0]} served "
                                f"for version {v}"
                            )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def churner() -> None:
            # The writer path (bump + invalidate) racing the clock:
            # entries die by staleness and by TTL in the same window.
            try:
                while not stop.is_set():
                    version[0] += 1
                    cache.invalidate(version[0])
                    clock.now += 1.0
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=target)
            for target in (putter, putter, getter, getter, churner)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join()
        stop_timer.cancel()
        assert not errors, errors[0]
        assert len(cache) <= 16
        # Both drop paths were actually exercised by the race.
        assert cache.stats.stale_drops + cache.stats.expirations > 0


# ---------------------------------------------------------------------------
# Randomized interleavings (satellite: property tests)
# ---------------------------------------------------------------------------

#: One abstract cache action: (op, source, ...) drawn by hypothesis.
_actions = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5)),
        st.tuples(st.just("get"), st.integers(0, 5)),
        st.tuples(st.just("bump"), st.just(0)),
        st.tuples(st.just("invalidate"), st.just(0)),
        st.tuples(st.just("tick"), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class TestRandomizedInterleavings:
    """No interleaving may serve a result stored at another version."""

    @settings(max_examples=200, deadline=None)
    @given(actions=_actions, capacity=st.integers(1, 4))
    def test_version_consistency_under_any_interleaving(
        self, actions, capacity
    ):
        clock = FakeClock()
        cache = ResultCache(capacity, ttl=5.0, clock=clock)
        version = 0
        for op, source in actions:
            key = make_cache_key(source, "powerpush", {})
            if op == "put":
                cache.put(key, result_for(source, version), version)
            elif op == "get":
                hit = cache.get(key, version)
                if hit is not None:
                    # the estimate encodes the version it was stored at
                    assert hit.estimate[0] == version
            elif op == "bump":
                version += 1
            elif op == "invalidate":
                cache.invalidate(version)
            elif op == "tick":
                clock.now += 2.0
        # capacity is an invariant, not a hint
        assert len(cache) <= capacity

    @settings(max_examples=100, deadline=None)
    @given(actions=_actions)
    def test_invalidate_after_bump_leaves_no_pre_bump_entry(self, actions):
        cache = ResultCache(8)
        version = 0
        for op, source in actions:
            key = make_cache_key(source, "powerpush", {})
            if op == "put":
                cache.put(key, result_for(source, version), version)
            elif op == "bump":
                version += 1
                cache.invalidate(version)  # the server's writer path
            elif op == "get":
                cache.get(key, version)
        # After the loop, every surviving entry is at the final version.
        for source in range(6):
            key = make_cache_key(source, "powerpush", {})
            stamped = cache.version_of(key)
            assert stamped is None or stamped == version
