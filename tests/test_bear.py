"""Tests for the BEAR baseline (explicit-inverse block elimination)."""

import numpy as np
import pytest

from repro.bepi.bear import bear_query, build_bear_index
from repro.bepi.blockelim import build_bepi_index
from repro.errors import IndexBuildError
from repro.graph.build import cycle_graph
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense, ground_truth_ppr


class TestBearIndex:
    def test_build(self, medium_graph):
        index = build_bear_index(medium_graph)
        assert index.num_spokes + index.num_hubs == medium_graph.num_nodes
        assert index.size_bytes > 0

    def test_rejects_dead_ends(self, dead_end_graph):
        with pytest.raises(IndexBuildError):
            build_bear_index(dead_end_graph)

    def test_rejects_oversized_blocks(self, medium_graph):
        with pytest.raises(IndexBuildError):
            build_bear_index(medium_graph, max_block_size=1)

    def test_graph_mismatch_detected(self, medium_graph):
        index = build_bear_index(medium_graph)
        with pytest.raises(IndexBuildError):
            index.check_graph(cycle_graph(4))

    def test_denser_than_bepi_lu(self, medium_graph):
        # BEAR's explicit inverses fill the spoke blocks; BePI's sparse
        # LU factors do not — the §7 size comparison.
        bear = build_bear_index(medium_graph)
        bepi = build_bepi_index(medium_graph)
        assert bear.size_bytes >= 0.5 * bepi.size_bytes  # same ballpark
        # The inverse block-diagonal is at least as dense as H11.
        assert bear.h11_inv.nnz >= bear.num_spokes


class TestBearQuery:
    def test_exact_on_paper_graph(self, paper_graph):
        index = build_bear_index(paper_graph, wing_width=1)
        for source in range(5):
            truth = exact_ppr_dense(paper_graph, source)
            result = bear_query(paper_graph, index, source)
            assert l1_error(result.estimate, truth) <= 1e-10, source

    def test_exact_on_medium_graph(self, medium_graph):
        index = build_bear_index(medium_graph)
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 5, l1_threshold=1e-13)
        )
        result = bear_query(medium_graph, index, 5)
        assert l1_error(result.estimate, truth) <= 1e-9

    def test_direct_solve_beats_bepi_accuracy_at_loose_delta(
        self, medium_graph
    ):
        from repro.bepi.solver import bepi_query

        bear_index = build_bear_index(medium_graph)
        bepi_index = build_bepi_index(medium_graph)
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 2, l1_threshold=1e-13)
        )
        bear_error = l1_error(
            bear_query(medium_graph, bear_index, 2).estimate, truth
        )
        bepi_loose_error = l1_error(
            bepi_query(medium_graph, bepi_index, 2, delta=1e-3).estimate,
            truth,
        )
        assert bear_error <= bepi_loose_error

    def test_method_name(self, paper_graph):
        index = build_bear_index(paper_graph, wing_width=1)
        assert bear_query(paper_graph, index, 0).method == "BEAR"

    def test_works_on_cycle(self):
        graph = cycle_graph(10)
        index = build_bear_index(graph, wing_width=2)
        truth = exact_ppr_dense(graph, 4)
        result = bear_query(graph, index, 4)
        assert l1_error(result.estimate, truth) <= 1e-10
