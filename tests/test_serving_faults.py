"""Tests for deterministic fault injection (:mod:`repro.serving.faults`).

The schedule layer is pure bookkeeping, so most of this file needs no
processes: spec validation, seed-deterministic schedule generation,
fire-once parent dispatch, and the worker-local trigger ordinals.  One
end-to-end test drives a real :class:`ShardedDispatcher` through a
dropped reply to show the request-timeout + bounded-retry path recovers
the answer byte-identically.
"""

import numpy as np
import pytest

from repro.api import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.serving import ShardedDispatcher
from repro.serving.faults import (
    PARENT_KINDS,
    WORKER_KINDS,
    FaultInjector,
    FaultSpec,
    WorkerFaultPlan,
)

PARAMS = {"l1_threshold": 1e-6}


class TestFaultSpec:
    def test_valid_kinds_cover_both_sides(self):
        assert PARENT_KINDS == {"kill", "stop", "cont"}
        assert WORKER_KINDS == {"delay_reply", "drop_reply", "crash_update"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode", "worker": 0, "at": 0},
            {"kind": "kill", "worker": -1, "at": 0},
            {"kind": "kill", "worker": 0, "at": -1},
            {"kind": "delay_reply", "worker": 0, "at": 0, "delay": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            FaultSpec(**kwargs)

    def test_injector_rejects_non_spec_entries(self):
        with pytest.raises(ParameterError):
            FaultInjector([("kill", 0, 3)])


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            workers=3, requests=100, kills=2, stops=1, drops=2, delays=1
        )
        a = FaultInjector.random_schedule(seed=11, **kwargs)
        b = FaultInjector.random_schedule(seed=11, **kwargs)
        assert a.schedule == b.schedule
        c = FaultInjector.random_schedule(seed=12, **kwargs)
        assert a.schedule != c.schedule

    def test_kill_points_land_in_the_warm_middle(self):
        injector = FaultInjector.random_schedule(
            workers=2, requests=100, kills=5, seed=0
        )
        for spec in injector.schedule:
            assert spec.kind == "kill"
            assert 10 <= spec.at < 90
            assert spec.worker in (0, 1)

    def test_every_stop_gets_a_later_cont(self):
        injector = FaultInjector.random_schedule(
            workers=2, requests=50, kills=0, stops=2, seed=5
        )
        stops = [s for s in injector.schedule if s.kind == "stop"]
        conts = [s for s in injector.schedule if s.kind == "cont"]
        assert len(stops) == len(conts) == 2
        for stop, cont in zip(stops, conts):
            assert cont.worker == stop.worker
            assert cont.at > stop.at

    def test_validation(self):
        with pytest.raises(ParameterError):
            FaultInjector.random_schedule(workers=0, requests=100)
        with pytest.raises(ParameterError):
            FaultInjector.random_schedule(workers=2, requests=5)

    def test_summary_counts_by_kind(self):
        injector = FaultInjector.random_schedule(
            workers=2, requests=100, kills=1, stops=1, drops=2, seed=0
        )
        assert injector.summary() == {
            "kill": 1,
            "stop": 1,
            "cont": 1,
            "drop_reply": 2,
        }


class TestParentDispatch:
    def test_parent_faults_fire_exactly_once(self):
        kill = FaultSpec("kill", 0, at=7)
        stop = FaultSpec("stop", 1, at=7)
        injector = FaultInjector([kill, stop, FaultSpec("cont", 1, at=9)])
        assert injector.parent_faults_at(6) == []
        assert injector.parent_faults_at(7) == [kill, stop]
        # Fired means consumed: a replayed submit count is a no-op.
        assert injector.parent_faults_at(7) == []
        assert injector.fired() == [kill, stop]
        assert [s.kind for s in injector.parent_faults_at(9)] == ["cont"]

    def test_worker_kinds_never_reach_the_parent(self):
        injector = FaultInjector([FaultSpec("drop_reply", 0, at=3)])
        for count in range(10):
            assert injector.parent_faults_at(count) == []
        assert injector.fired() == []

    def test_worker_plan_splits_by_worker_and_kind(self):
        drop0 = FaultSpec("drop_reply", 0, at=1)
        delay1 = FaultSpec("delay_reply", 1, at=2, delay=0.5)
        injector = FaultInjector([drop0, delay1, FaultSpec("kill", 0, at=4)])
        assert injector.worker_plan(0) == (drop0,)
        assert injector.worker_plan(1) == (delay1,)
        assert injector.worker_plan(2) == ()


class TestWorkerFaultPlan:
    def test_empty_plan_is_falsy_and_inert(self):
        plan = WorkerFaultPlan(())
        assert not plan
        assert all(plan.on_reply() is None for _ in range(5))
        assert not any(plan.on_update_applied() for _ in range(5))

    def test_reply_ordinals_trigger_drop_and_delay(self):
        plan = WorkerFaultPlan(
            (
                FaultSpec("drop_reply", 0, at=1),
                FaultSpec("delay_reply", 0, at=3, delay=0.25),
            )
        )
        assert plan
        assert plan.on_reply() is None  # ordinal 0
        assert plan.on_reply() == ("drop", 0.0)  # ordinal 1
        assert plan.on_reply() is None  # ordinal 2
        assert plan.on_reply() == ("delay", 0.25)  # ordinal 3
        assert plan.on_reply() is None  # one-shot, does not repeat

    def test_crash_ordinal_counts_update_broadcasts(self):
        plan = WorkerFaultPlan((FaultSpec("crash_update", 0, at=1),))
        assert plan.on_update_applied() is False  # broadcast 0
        assert plan.on_update_applied() is True  # broadcast 1
        assert plan.on_update_applied() is False


class TestDropReplyEndToEnd:
    def test_dropped_reply_recovers_via_retry_byte_identical(self):
        rng = np.random.default_rng(13)
        graph = rmat_digraph(8, 1200, rng=rng, name="faults-e2e")
        injector = FaultInjector(
            [FaultSpec("drop_reply", w, at=0) for w in (0, 1)]
        )
        with ShardedDispatcher(
            graph,
            workers=2,
            alpha=0.2,
            seed=7,
            fault_injector=injector,
            request_timeout=2.0,
        ) as disp:
            sources = list(range(10))
            served = {
                s: disp.query(s, "powerpush", **PARAMS) for s in sources
            }
            stats = disp.stats()
            assert stats["supervisor"]["retries"] >= 1
        engine = PPREngine(graph, alpha=0.2, seed=7)
        for s in sources:
            expected = engine.query(s, "powerpush", **PARAMS)
            assert (
                served[s].result.estimate.tobytes()
                == expected.estimate.tobytes()
            )
