"""Unit tests for counters, traces and timers."""

import time

import pytest

from repro.instrumentation.counters import PushCounters
from repro.instrumentation.timers import Stopwatch, timed
from repro.instrumentation.tracing import ConvergenceTrace


class TestCounters:
    def test_count_push(self):
        counters = PushCounters()
        counters.count_push(5)
        counters.count_push(0)
        assert counters.pushes == 2
        assert counters.residue_updates == 5

    def test_bulk(self):
        counters = PushCounters()
        counters.count_bulk_pushes(10, 300)
        assert counters.pushes == 10
        assert counters.residue_updates == 300

    def test_bump_extras(self):
        counters = PushCounters()
        counters.bump("epochs")
        counters.bump("epochs", 2)
        assert counters.extras["epochs"] == 3

    def test_merge(self):
        a = PushCounters(pushes=1, residue_updates=2, random_walks=3)
        a.bump("x", 1)
        b = PushCounters(pushes=10, residue_updates=20, walk_steps=5)
        b.bump("x", 2)
        a.merge(b)
        assert a.pushes == 11
        assert a.residue_updates == 22
        assert a.random_walks == 3
        assert a.walk_steps == 5
        assert a.extras["x"] == 3

    def test_as_dict_includes_extras(self):
        counters = PushCounters()
        counters.bump("custom", 7)
        data = counters.as_dict()
        assert data["custom"] == 7
        assert "pushes" in data


class TestTrace:
    def test_stride_filtering(self):
        trace = ConvergenceTrace(stride=100)
        trace.maybe_record(0, 1.0)
        trace.maybe_record(50, 0.9)  # skipped: only 50 new updates
        trace.maybe_record(120, 0.8)
        assert len(trace) == 2

    def test_record_always_appends(self):
        trace = ConvergenceTrace(stride=1000)
        trace.record(0, 1.0)
        trace.record(1, 0.5)
        assert len(trace) == 2

    def test_series_views(self):
        trace = ConvergenceTrace()
        trace.record(10, 0.5)
        trace.record(20, 0.25)
        xs, ys = trace.series_vs_updates()
        assert xs == [10, 20]
        assert ys == [0.5, 0.25]
        ts, ys2 = trace.series_vs_time()
        assert len(ts) == 2
        assert ys2 == ys

    def test_threshold_queries(self):
        trace = ConvergenceTrace()
        trace.record(10, 0.5)
        trace.record(20, 0.05)
        assert trace.updates_to_error(0.1) == 20
        assert trace.updates_to_error(0.01) is None
        assert trace.time_to_error(0.1) is not None

    def test_clock_restart(self):
        trace = ConvergenceTrace()
        time.sleep(0.01)
        trace.restart_clock()
        trace.record(0, 1.0)
        assert trace.points[0].seconds < 0.01


class TestTimers:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("a"):
            pass
        with watch.lap("b"):
            pass
        assert set(watch.laps) == {"a", "b"}
        assert watch.total == pytest.approx(
            watch.laps["a"] + watch.laps["b"]
        )

    def test_timed(self):
        with timed() as holder:
            time.sleep(0.005)
        assert holder[0] >= 0.004
