"""Smoke tests: every example script runs end to end.

Run at a reduced dataset scale so the whole file stays fast; the
scripts themselves are exercised exactly as a user would run them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def _small_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.2")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    # Each example re-imports datasets through the in-memory cache;
    # clear it so the scale override takes effect.
    from repro.generators.datasets import clear_dataset_cache

    clear_dataset_cache()
    yield
    clear_dataset_cache()


def test_examples_exist():
    assert "quickstart.py" in _SCRIPTS
    assert len(_SCRIPTS) >= 3


@pytest.mark.parametrize("script", _SCRIPTS)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced almost no output"
