"""Unit tests for Forward Push (Algorithm 1) and FIFO-FwdPush (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.fifo_fwdpush import fifo_forward_push, r_max_for_l1_threshold
from repro.core.fwdpush import forward_push
from repro.errors import ConvergenceError, ParameterError
from repro.graph.build import from_edges
from repro.instrumentation.tracing import ConvergenceTrace
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense


class TestTerminationGuarantee:
    @pytest.mark.parametrize("scheduler", ["fifo", "lifo", "max-residue"])
    def test_no_active_nodes_at_exit(self, paper_graph, scheduler):
        r_max = 0.01
        result = forward_push(
            paper_graph, 0, r_max=r_max, scheduler=scheduler
        )
        assert result.residue is not None
        assert np.all(
            result.residue <= paper_graph.out_degree * r_max + 1e-15
        )

    @pytest.mark.parametrize("scheduler", ["fifo", "lifo", "max-residue"])
    def test_l1_error_bounded_by_m_r_max(self, paper_graph, scheduler):
        r_max = 0.005
        truth = exact_ppr_dense(paper_graph, 0)
        result = forward_push(
            paper_graph, 0, r_max=r_max, scheduler=scheduler
        )
        assert (
            l1_error(result.estimate, truth)
            <= paper_graph.num_edges * r_max
        )

    def test_error_equals_r_sum_exactly(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0)
        result = forward_push(paper_graph, 0, r_max=0.003)
        assert result.residue is not None
        assert l1_error(result.estimate, truth) == pytest.approx(
            result.residue.sum(), rel=1e-9
        )

    def test_dead_end_graph_terminates(self, dead_end_graph):
        truth = exact_ppr_dense(dead_end_graph, 0)
        result = forward_push(dead_end_graph, 0, r_max=1e-6)
        assert l1_error(result.estimate, truth) <= 1e-5

    def test_uniform_teleport_rescan_terminates(self, dead_end_graph):
        result = forward_push(
            dead_end_graph,
            0,
            r_max=1e-4,
            dead_end_policy="uniform-teleport",
        )
        assert result.residue is not None
        # Dead ends terminate at their conceptual degree (n here).
        effective = dead_end_graph.out_degree.copy()
        effective[dead_end_graph.dead_ends] = dead_end_graph.num_nodes
        assert np.all(result.residue <= effective * 1e-4 + 1e-15)


class TestValidation:
    def test_rejects_zero_r_max(self, paper_graph):
        with pytest.raises(ParameterError):
            forward_push(paper_graph, 0, r_max=0.0)

    def test_rejects_unknown_scheduler(self, paper_graph):
        with pytest.raises(ParameterError):
            forward_push(paper_graph, 0, r_max=0.1, scheduler="bogus")  # type: ignore[arg-type]

    def test_push_cap_raises(self, paper_graph):
        with pytest.raises(ConvergenceError):
            forward_push(paper_graph, 0, r_max=1e-9, max_pushes=3)


class TestSchedulerBehaviour:
    def test_all_schedulers_same_error_guarantee(self, medium_graph):
        r_max = 1e-5
        results = {
            s: forward_push(medium_graph, 5, r_max=r_max, scheduler=s)
            for s in ("fifo", "lifo", "max-residue")
        }
        for result in results.values():
            assert result.residue is not None
            assert result.residue.sum() <= medium_graph.num_edges * r_max

    def test_fifo_uses_fewer_or_equal_pushes_than_lifo(self, medium_graph):
        # Not a theorem, but holds robustly on scale-free graphs and
        # guards the implementation from silent scheduler regressions.
        r_max = 1e-5
        fifo = forward_push(medium_graph, 5, r_max=r_max, scheduler="fifo")
        lifo = forward_push(medium_graph, 5, r_max=r_max, scheduler="lifo")
        assert fifo.counters.pushes <= lifo.counters.pushes * 1.2


class TestFifoForwardPush:
    def test_requires_exactly_one_threshold(self, paper_graph):
        with pytest.raises(ParameterError):
            fifo_forward_push(paper_graph, 0)
        with pytest.raises(ParameterError):
            fifo_forward_push(
                paper_graph, 0, r_max=0.1, l1_threshold=1e-8
            )

    def test_r_max_derived_from_lambda(self, paper_graph):
        assert r_max_for_l1_threshold(paper_graph, 1.3e-7) == pytest.approx(
            1.3e-7 / 13
        )

    def test_faithful_and_frontier_agree(self, medium_graph):
        faithful = fifo_forward_push(
            medium_graph, 3, l1_threshold=1e-6, mode="faithful"
        )
        frontier = fifo_forward_push(
            medium_graph, 3, l1_threshold=1e-6, mode="frontier"
        )
        truth_gap = np.abs(faithful.estimate - frontier.estimate).sum()
        # Different push orders give different (but both valid) results
        # within the combined error budget.
        assert truth_gap <= 2e-6

    def test_frontier_mode_terminal_state(self, medium_graph):
        l1_threshold = 1e-7
        result = fifo_forward_push(
            medium_graph, 3, l1_threshold=l1_threshold
        )
        r_max = l1_threshold / medium_graph.num_edges
        assert result.residue is not None
        assert np.all(
            result.residue <= medium_graph.out_degree * r_max + 1e-15
        )

    def test_unknown_mode_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            fifo_forward_push(
                paper_graph, 0, r_max=0.01, mode="warp"  # type: ignore[arg-type]
            )

    def test_trace_reaches_threshold(self, medium_graph):
        trace = ConvergenceTrace(stride=0)
        fifo_forward_push(
            medium_graph, 3, l1_threshold=1e-6, trace=trace
        )
        _, errors = trace.series_vs_time()
        assert errors[-1] <= 1e-6


class TestGeometricDecayTheorem43:
    """Empirical check of Lemma 4.4's geometric work/error relation."""

    def test_log_error_decreases_linearly_in_work(self, medium_graph):
        trace = ConvergenceTrace(stride=0)
        fifo_forward_push(
            medium_graph, 3, l1_threshold=1e-9, trace=trace
        )
        updates, errors = trace.series_vs_updates()
        # Fit log(error) ~ a * updates + b over the tail; slope must be
        # negative and the fit close to linear (R^2 > 0.9).
        mask = [e > 0 for e in errors]
        xs = np.array([u for u, keep in zip(updates, mask) if keep], float)
        ys = np.log(np.array([e for e, keep in zip(errors, mask) if keep]))
        if xs.shape[0] < 3:
            pytest.skip("trace too short")
        slope, intercept = np.polyfit(xs, ys, 1)
        predicted = slope * xs + intercept
        residual = ys - predicted
        r_squared = 1 - residual.var() / ys.var()
        assert slope < 0
        assert r_squared > 0.9
