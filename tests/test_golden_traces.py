"""Golden-trace regression tests: every solver vs committed vectors.

A 200-node scale-free graph is committed as an edge list
(``tests/data/golden/graph_edges.txt``) together with the PPR vector
each registered solver produces on it under pinned parameters/seeds
(``tests/data/golden/golden_vectors.npz``).  Kernel refactors that
change any numeric path — push order, sweep vectorisation, walk
simulation, index construction — fail here instead of drifting
silently.

Tolerances are deliberately tight: deterministic solvers must match to
1e-12 (their float op sequence is part of the contract), stochastic
solvers likewise because their seeded RNG stream is pinned, and BePI
gets 1e-8 of slack for the scipy sparse factorisation.

Regenerate after an *intentional* numeric change (then justify the
diff in review)::

    PYTHONPATH=src python tests/test_golden_traces.py --regenerate
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import solve, solver_names
from repro.graph.build import from_edges

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden"
GRAPH_FILE = GOLDEN_DIR / "graph_edges.txt"
VECTORS_FILE = GOLDEN_DIR / "golden_vectors.npz"

NUM_NODES = 200
SOURCES = (0, 17)

#: Pinned parameters per registered solver.  Every canonical solver
#: name must appear here — the coverage test enforces it, so adding a
#: solver without committing its golden trace fails CI.
CASES: dict[str, dict] = {
    "powerpush": {"l1_threshold": 1e-8},
    "powitr": {"l1_threshold": 1e-8},
    "fifo-fwdpush": {"l1_threshold": 1e-8},
    "fwdpush-scheduled": {"r_max": 1e-5},
    "simfwdpush": {"l1_threshold": 1e-8},
    "bepi": {"delta": 1e-10},
    "montecarlo": {"num_walks": 2000, "seed": 11},
    "speedppr": {"epsilon": 0.4, "seed": 11},
    "fora": {"epsilon": 0.4, "seed": 11},
    "resacc": {"epsilon": 0.4, "seed": 11},
}

#: Comparison tolerance per method (absolute, rtol=0).
ATOL = {name: 1e-12 for name in CASES}
ATOL["bepi"] = 1e-8


def load_golden_graph():
    edges = np.loadtxt(GRAPH_FILE, dtype=np.int64)
    return from_edges(
        [(int(u), int(v)) for u, v in edges],
        num_nodes=NUM_NODES,
        name="golden-200",
    )


def compute_vector(graph, method: str, source: int) -> np.ndarray:
    return solve(graph, source, method, **CASES[method]).estimate


def regenerate() -> None:
    """Write the graph fixture and all golden vectors (maintainer tool)."""
    from repro.generators.chung_lu import power_law_digraph

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    graph = power_law_digraph(
        NUM_NODES, 1400, rng=np.random.default_rng(2021), name="golden-200"
    )
    sources_arr, targets_arr = graph.edge_array()
    np.savetxt(
        GRAPH_FILE,
        np.column_stack([sources_arr, targets_arr]),
        fmt="%d",
        header="golden 200-node scale-free graph (u v per line)",
    )
    graph = load_golden_graph()  # round-trip, exactly what tests will see
    vectors = {}
    for method in CASES:
        for source in SOURCES:
            vectors[f"{method}__{source}"] = compute_vector(
                graph, method, source
            )
    np.savez_compressed(VECTORS_FILE, **vectors)
    print(
        f"wrote {GRAPH_FILE.name} ({graph.num_edges} edges) and "
        f"{VECTORS_FILE.name} ({len(vectors)} vectors)"
    )


class TestFixtures:
    def test_fixture_files_committed(self):
        assert GRAPH_FILE.is_file(), "golden graph fixture missing"
        assert VECTORS_FILE.is_file(), "golden vectors fixture missing"

    def test_every_registered_solver_has_a_case(self):
        missing = set(solver_names()) - set(CASES)
        assert not missing, (
            f"solvers without golden traces: {sorted(missing)} — add a "
            f"CASES entry and regenerate the fixture"
        )

    def test_graph_shape_is_stable(self):
        graph = load_golden_graph()
        assert graph.num_nodes == NUM_NODES
        assert graph.num_edges > 1000
        assert not graph.has_dead_ends


def test_block_path_reproduces_golden_powerpush_bytes():
    """power_push_block rows == the committed powerpush vectors, exactly.

    The block solver promises bitwise equality with per-source solves,
    so against the golden fixture the tolerance is zero: any kernel
    change that re-orders a float op in the block path fails here even
    if the per-source path still matches.
    """
    from repro.core.powerpush import power_push_block

    graph = load_golden_graph()
    results = power_push_block(
        graph, list(SOURCES), **CASES["powerpush"]
    )
    with np.load(VECTORS_FILE) as archive:
        for source, result in zip(SOURCES, results):
            expected = archive[f"powerpush__{source}"]
            assert np.array_equal(result.estimate, expected), (
                f"block row for source {source} is not byte-identical to "
                f"the golden powerpush vector"
            )


def test_engine_batch_block_reproduces_golden_bytes():
    """The engine's auto-selected block batch matches the fixture too."""
    from repro.api import PPREngine

    graph = load_golden_graph()
    engine = PPREngine(graph)
    results = engine.batch_query(
        list(SOURCES), "powerpush", **CASES["powerpush"]
    )
    assert engine.block_batches == 1
    with np.load(VECTORS_FILE) as archive:
        for source, result in zip(SOURCES, results):
            assert np.array_equal(
                result.estimate, archive[f"powerpush__{source}"]
            )


@pytest.mark.parametrize("source", SOURCES)
@pytest.mark.parametrize("method", sorted(CASES))
def test_solver_matches_golden_trace(method, source):
    graph = load_golden_graph()
    with np.load(VECTORS_FILE) as archive:
        expected = archive[f"{method}__{source}"]
    actual = compute_vector(graph, method, source)
    np.testing.assert_allclose(
        actual,
        expected,
        rtol=0,
        atol=ATOL[method],
        err_msg=(
            f"{method} drifted from its golden trace (source {source}); "
            f"if the numeric change is intentional, regenerate via "
            f"'python tests/test_golden_traces.py --regenerate'"
        ),
    )


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(1)
