"""Unit tests for Power Iteration."""

import numpy as np
import pytest

from repro.core.power_iteration import power_iteration
from repro.errors import ConvergenceError, NodeNotFoundError, ParameterError
from repro.graph.build import cycle_graph, from_edges
from repro.instrumentation.tracing import ConvergenceTrace
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense


class TestConvergence:
    def test_error_bound_met(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0)
        result = power_iteration(paper_graph, 0, l1_threshold=1e-10)
        assert l1_error(result.estimate, truth) <= 1e-10

    def test_r_sum_is_exact_error(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 0)
        result = power_iteration(paper_graph, 0, l1_threshold=1e-6)
        assert result.r_sum == pytest.approx(
            l1_error(result.estimate, truth), rel=1e-6
        )

    def test_iteration_count_matches_analytics(self, paper_graph):
        # r_sum = 0.8^j; for lambda = 1e-6 we need exactly 62 sweeps.
        result = power_iteration(paper_graph, 0, l1_threshold=1e-6)
        import math

        expected = math.ceil(math.log(1e-6) / math.log(0.8))
        assert result.counters.iterations == expected

    def test_estimate_sums_to_one_minus_error(self, paper_graph):
        result = power_iteration(paper_graph, 0, l1_threshold=1e-8)
        assert result.estimate.sum() == pytest.approx(1.0, abs=1e-7)

    def test_cycle_graph(self):
        graph = cycle_graph(6)
        truth = exact_ppr_dense(graph, 2)
        result = power_iteration(graph, 2, l1_threshold=1e-12)
        assert l1_error(result.estimate, truth) <= 1e-11

    def test_different_alpha(self, paper_graph):
        truth = exact_ppr_dense(paper_graph, 1, alpha=0.5)
        result = power_iteration(
            paper_graph, 1, alpha=0.5, l1_threshold=1e-10
        )
        assert l1_error(result.estimate, truth) <= 1e-10

    def test_dead_end_redirect_semantics(self, dead_end_graph):
        truth = exact_ppr_dense(dead_end_graph, 0)
        result = power_iteration(dead_end_graph, 0, l1_threshold=1e-12)
        assert l1_error(result.estimate, truth) <= 1e-10

    def test_dead_end_uniform_semantics(self, dead_end_graph):
        truth = exact_ppr_dense(
            dead_end_graph, 0, dead_end_policy="uniform-teleport"
        )
        result = power_iteration(
            dead_end_graph,
            0,
            l1_threshold=1e-12,
            dead_end_policy="uniform-teleport",
        )
        assert l1_error(result.estimate, truth) <= 1e-10


class TestValidation:
    def test_rejects_bad_lambda(self, paper_graph):
        with pytest.raises(ParameterError):
            power_iteration(paper_graph, 0, l1_threshold=0.0)
        with pytest.raises(ParameterError):
            power_iteration(paper_graph, 0, l1_threshold=1.5)

    def test_rejects_bad_source(self, paper_graph):
        with pytest.raises(NodeNotFoundError):
            power_iteration(paper_graph, 99)

    def test_iteration_cap_raises(self, paper_graph):
        with pytest.raises(ConvergenceError):
            power_iteration(
                paper_graph, 0, l1_threshold=1e-10, max_iterations=3
            )


class TestInstrumentation:
    def test_counters_bill_all_edges(self, paper_graph):
        result = power_iteration(paper_graph, 0, l1_threshold=1e-4)
        m = paper_graph.num_edges
        assert result.counters.residue_updates == result.counters.iterations * m

    def test_trace_records_decay(self, paper_graph):
        trace = ConvergenceTrace(stride=0)
        power_iteration(paper_graph, 0, l1_threshold=1e-4, trace=trace)
        _, errors = trace.series_vs_time()
        assert errors[0] == 1.0
        assert errors[-1] <= 1e-4
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_method_name(self, paper_graph):
        assert power_iteration(paper_graph, 0).method == "PowItr"
