"""Property-based tests (hypothesis) for the core invariants.

These are the theorems the reproduction rests on, checked on *random*
graphs and push sequences rather than hand-picked fixtures:

1. Mass conservation: ``sum(reserve) + sum(residue) == 1`` under any
   push sequence.
2. Error identity: ``||pi_hat - pi||_1 == r_sum`` for non-negative
   residues (Eq. 7's equality form).
3. Lemma 4.1 equivalence on random graphs.
4. PPR is a distribution; PowItr converges to the dense solve.
5. CSR construction invariants under arbitrary edge lists.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.power_iteration import power_iteration
from repro.core.residues import PushState
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.graph.build import from_edges
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def connected_digraphs(draw, max_nodes=12):
    """Random digraph with no dead ends (cycle backbone + extra edges)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    # Cycle backbone guarantees out-degree >= 1 everywhere.
    edges = {(v, (v + 1) % n) for v in range(n)}
    extra_count = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(extra_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((u, v))
    return from_edges(sorted(edges), num_nodes=n)


@st.composite
def digraphs_with_dead_ends(draw, max_nodes=10):
    """Random digraph that may contain dead ends."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edge_count = draw(st.integers(min_value=1, max_value=3 * n))
    edges = set()
    for _ in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((u, v))
    if not edges:
        edges.add((0, 1 % n))
    return from_edges(sorted(edges), num_nodes=n)


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


class TestMassConservation:
    @_SETTINGS
    @given(
        graph=connected_digraphs(),
        pushes=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=0,
            max_size=40,
        ),
    )
    def test_arbitrary_push_sequences_conserve_mass(self, graph, pushes):
        state = PushState(graph, 0)
        for raw in pushes:
            state.push(raw % graph.num_nodes)
        assert state.mass_total() == pytest.approx(1.0, abs=1e-10)
        assert np.all(state.residue >= -1e-15)
        assert np.all(state.reserve >= 0)

    @_SETTINGS
    @given(
        graph=digraphs_with_dead_ends(),
        pushes=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=0,
            max_size=30,
        ),
    )
    def test_conservation_with_dead_ends(self, graph, pushes):
        state = PushState(graph, 0)
        for raw in pushes:
            state.push(raw % graph.num_nodes)
        assert state.mass_total() == pytest.approx(1.0, abs=1e-10)


class TestErrorIdentity:
    @_SETTINGS
    @given(
        graph=connected_digraphs(max_nodes=10),
        pushes=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=25,
        ),
    )
    def test_l1_error_equals_r_sum_mid_run(self, graph, pushes):
        truth = exact_ppr_dense(graph, 0)
        state = PushState(graph, 0)
        for raw in pushes:
            state.push(raw % graph.num_nodes)
        # ||pi_hat - pi||_1 = sum of residues, exactly, at ANY point.
        assert l1_error(state.reserve, truth) == pytest.approx(
            float(state.residue.sum()), abs=1e-9
        )


class TestEquivalenceProperty:
    @_SETTINGS
    @given(graph=connected_digraphs(max_nodes=10))
    def test_sim_fwdpush_equals_powitr(self, graph):
        sim = simultaneous_forward_push(graph, 0, l1_threshold=1e-6)
        pow_itr = power_iteration(graph, 0, l1_threshold=1e-6)
        np.testing.assert_allclose(
            sim.estimate, pow_itr.estimate, atol=1e-12
        )


class TestPowItrConvergence:
    @_SETTINGS
    @given(
        graph=connected_digraphs(max_nodes=10),
        source=st.integers(min_value=0, max_value=100),
        alpha=st.floats(min_value=0.05, max_value=0.9),
    )
    def test_converges_to_dense_solution(self, graph, source, alpha):
        source = source % graph.num_nodes
        truth = exact_ppr_dense(graph, source, alpha=alpha)
        result = power_iteration(
            graph, source, alpha=alpha, l1_threshold=1e-9
        )
        assert l1_error(result.estimate, truth) <= 1e-8

    @_SETTINGS
    @given(graph=digraphs_with_dead_ends(max_nodes=8))
    def test_dead_end_graphs_converge(self, graph):
        truth = exact_ppr_dense(graph, 0)
        result = power_iteration(graph, 0, l1_threshold=1e-10)
        assert l1_error(result.estimate, truth) <= 1e-9


class TestCsrInvariants:
    @_SETTINGS
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=0,
            max_size=60,
        )
    )
    def test_csr_structure(self, edges):
        graph = from_edges(edges)
        assert graph.out_indptr[0] == 0
        assert graph.out_indptr[-1] == graph.num_edges
        assert np.all(np.diff(graph.out_indptr) >= 0)
        assert int(graph.out_degree.sum()) == graph.num_edges
        assert int(graph.in_degree.sum()) == graph.num_edges
        # Dedup: no duplicate (u, v) pairs remain.
        seen = set()
        for edge in graph.iter_edges():
            assert edge not in seen
            seen.add(edge)
        # No self-loops survive the default build.
        assert all(u != v for u, v in seen)

    @_SETTINGS
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=12),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_reverse_preserves_edge_multiset(self, edges):
        graph = from_edges(edges)
        reverse = graph.reverse()
        forward_edges = set(graph.iter_edges())
        backward_edges = {(v, u) for u, v in reverse.iter_edges()}
        assert forward_edges == backward_edges


class TestWalkBudgetProperty:
    @_SETTINGS
    @given(
        graph=connected_digraphs(max_nodes=10),
        w_exponent=st.integers(min_value=2, max_value=6),
    )
    def test_refined_state_needs_at_most_m_walks(self, graph, w_exponent):
        from repro.core.mc_phase import required_walks
        from repro.core.refinement import refine_to_r_max

        num_walks_w = 10**w_exponent
        state = PushState(graph, 0)
        refine_to_r_max(state, 1.0 / num_walks_w)
        walks = required_walks(state.residue, num_walks_w)
        assert int(walks.sum()) <= graph.num_edges + graph.num_nodes
        # Per node: W_v <= d_v (+1 float-slop allowance).
        assert np.all(walks <= graph.out_degree + 1)
