"""Analyzer plumbing: suppression parsing, rule registry, module inference."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.corpus import SourceFile, infer_module, load_corpus
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, all_rules, get_rule, register_rule, rule_ids
from repro.analysis.runner import Analyzer, resolve_rules
from repro.analysis.suppressions import parse_suppressions
from repro.errors import ParameterError

EXPECTED_RULES = {
    "rng-discipline",
    "no-column-fancy-gather",
    "backend-parity",
    "registry-signature-sync",
    "version-stamp",
    "lock-discipline",
    "workspace-discipline",
    "no-mutable-default",
    "suppression-hygiene",
}


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert EXPECTED_RULES <= set(rule_ids())

    def test_rules_sorted_and_described(self):
        rules = all_rules()
        assert [rule.id for rule in rules] == sorted(rule.id for rule in rules)
        for rule in rules:
            assert rule.summary
            assert rule.invariant
            assert rule.scope in ("file", "project")

    def test_unknown_rule_raises(self):
        with pytest.raises(ParameterError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ParameterError, match="already registered"):

            @register_rule
            class Duplicate(Rule):
                id = "rng-discipline"
                summary = "dup"
                invariant = "dup"

    def test_select_and_ignore(self):
        selected = resolve_rules(select=["rng-discipline", "version-stamp"])
        assert [rule.id for rule in selected] == [
            "rng-discipline",
            "version-stamp",
        ]
        remaining = resolve_rules(ignore=["rng-discipline"])
        assert "rng-discipline" not in [rule.id for rule in remaining]
        with pytest.raises(ParameterError):
            resolve_rules(select=["nope"])
        with pytest.raises(ParameterError):
            resolve_rules(ignore=["nope"])


class TestSuppressionParsing:
    def test_line_allow_with_reason(self):
        s = parse_suppressions(
            "x = 1  # repro: allow[rng-discipline] -- fixture value\n"
        )
        assert s.is_suppressed("rng-discipline", 1)
        assert not s.is_suppressed("rng-discipline", 2)
        assert not s.is_suppressed("other-rule", 1)

    def test_reasonless_allow_suppresses_nothing(self):
        s = parse_suppressions("x = 1  # repro: allow[rng-discipline]\n")
        assert not s.is_suppressed("rng-discipline", 1)
        assert [sup.rule for sup in s.unreasoned] == ["rng-discipline"]

    def test_file_wide_allow(self):
        s = parse_suppressions(
            "# repro: allow-file[lock-discipline] -- stress fixture\nx = 1\n"
        )
        assert s.is_suppressed("lock-discipline", 99)

    def test_multiple_rules_one_comment(self):
        s = parse_suppressions(
            "y = f()  # repro: allow[rule-a, rule-b] -- both fine here\n"
        )
        assert s.is_suppressed("rule-a", 1)
        assert s.is_suppressed("rule-b", 1)

    def test_string_literal_is_not_a_suppression(self):
        s = parse_suppressions(
            'text = "# repro: allow[rng-discipline] -- not a comment"\n'
        )
        assert s.suppressions == []

    def test_colon_separator_also_accepted(self):
        s = parse_suppressions(
            "x = 1  # repro: allow[rule-a]: reason text\n"
        )
        assert s.is_suppressed("rule-a", 1)


class TestModuleInference:
    @pytest.mark.parametrize(
        ("path", "module"),
        [
            ("src/repro/core/kernels.py", "repro.core.kernels"),
            ("src/repro/api/registry.py", "repro.api.registry"),
            ("src/repro/analysis/__init__.py", "repro.analysis"),
            ("repro/serving/server.py", "repro.serving.server"),
            ("standalone.py", "standalone"),
        ],
    )
    def test_infer_module(self, path, module):
        assert infer_module(Path(path)) == module

    def test_explicit_module_override(self, tmp_path):
        file = SourceFile.from_text(
            tmp_path / "whatever.py", "x = 1\n", module="repro.api.registry"
        )
        assert file.module == "repro.api.registry"
        assert file.in_package("repro.api")


class TestAnalyzer:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            load_corpus(["/no/such/path/anywhere"])

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "z.py").write_text(
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "b = np.random.rand(3)\n"
        )
        corpus = load_corpus([tmp_path])
        findings = Analyzer(resolve_rules(["rng-discipline"])).run(
            corpus
        ).findings
        assert [f.line for f in findings] == [2, 3]

    def test_severity_gates(self):
        assert Severity.ERROR.gates
        assert not Severity.WARNING.gates
        finding = Finding(
            rule="x", path="p.py", line=3, col=1, message="m"
        )
        assert finding.location == "p.py:3:1"
        assert finding.as_dict()["severity"] == "error"
