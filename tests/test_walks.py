"""Unit tests for the random-walk engine and walk indexes."""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    IndexBuildError,
    IndexMismatchError,
    ParameterError,
)
from repro.graph.build import cycle_graph, from_edges
from repro.metrics.ground_truth import exact_ppr_dense
from repro.walks.engine import simulate_walk_stops, single_walk, walk_stop_counts
from repro.walks.index import (
    build_walk_index,
    fora_plus_walk_counts,
    speedppr_walk_counts,
)
from repro.walks.storage import load_walk_index, save_walk_index, stored_size_bytes


class TestEngineBasics:
    def test_stops_are_valid_nodes(self, paper_graph, rng):
        starts = np.zeros(500, dtype=np.int64)
        stops, steps = simulate_walk_stops(
            paper_graph, starts, alpha=0.2, rng=rng
        )
        assert stops.shape == (500,)
        assert stops.min() >= 0 and stops.max() < 5
        assert steps > 0

    def test_empty_batch(self, paper_graph, rng):
        stops, steps = simulate_walk_stops(
            paper_graph, np.array([], dtype=np.int64), rng=rng
        )
        assert stops.shape == (0,)
        assert steps == 0

    def test_high_alpha_stops_quickly(self, paper_graph, rng):
        starts = np.zeros(200, dtype=np.int64)
        _, steps = simulate_walk_stops(
            paper_graph, starts, alpha=0.95, rng=rng
        )
        # Expected length 1/0.95 - 1 moves; generous cap.
        assert steps < 100

    def test_expected_walk_length(self, paper_graph, rng):
        # E[moves] = (1 - alpha) / alpha = 4 for alpha = 0.2.
        starts = np.zeros(20_000, dtype=np.int64)
        _, steps = simulate_walk_stops(
            paper_graph, starts, alpha=0.2, rng=rng
        )
        assert steps / 20_000 == pytest.approx(4.0, rel=0.1)

    def test_rejects_bad_start(self, paper_graph, rng):
        with pytest.raises(ParameterError):
            simulate_walk_stops(
                paper_graph, np.array([99]), rng=rng
            )

    def test_dead_end_requires_source(self, dead_end_graph, rng):
        with pytest.raises(ParameterError):
            simulate_walk_stops(
                dead_end_graph, np.array([0]), rng=rng
            )

    def test_batching_equivalent(self, paper_graph):
        starts = np.zeros(100, dtype=np.int64)
        a, _ = simulate_walk_stops(
            paper_graph,
            starts,
            rng=np.random.default_rng(7),
            batch_size=8,
        )
        # Different batch split -> different RNG consumption order, so
        # compare distributions only.
        b, _ = simulate_walk_stops(
            paper_graph,
            starts,
            rng=np.random.default_rng(7),
            batch_size=100,
        )
        assert a.shape == b.shape


class TestEngineDistribution:
    """The vectorised engine samples the PPR distribution."""

    def test_matches_exact_ppr(self, paper_graph, rng):
        truth = exact_ppr_dense(paper_graph, 0)
        counts, _ = walk_stop_counts(
            paper_graph, 0, 60_000, alpha=0.2, rng=rng
        )
        empirical = counts / counts.sum()
        np.testing.assert_allclose(empirical, truth, atol=0.01)

    def test_matches_scalar_reference(self, paper_graph):
        # Vectorised and scalar engines agree in distribution.
        rng = np.random.default_rng(99)
        scalar_counts = np.zeros(5)
        for _ in range(6000):
            scalar_counts[single_walk(paper_graph, 0, rng=rng)] += 1
        vector_counts, _ = walk_stop_counts(
            paper_graph, 0, 6000, rng=np.random.default_rng(100)
        )
        np.testing.assert_allclose(
            scalar_counts / 6000, vector_counts / 6000, atol=0.03
        )

    def test_dead_end_redirect_distribution(self, dead_end_graph, rng):
        truth = exact_ppr_dense(dead_end_graph, 0)
        counts, _ = walk_stop_counts(
            dead_end_graph, 0, 40_000, source=0, rng=rng
        )
        np.testing.assert_allclose(counts / 40_000, truth, atol=0.01)

    def test_walks_from_non_source_node(self, paper_graph, rng):
        # Walks from v2 sample pi_{v2}.
        truth = exact_ppr_dense(paper_graph, 1)
        counts, _ = walk_stop_counts(
            paper_graph, 1, 40_000, source=1, rng=rng
        )
        np.testing.assert_allclose(counts / 40_000, truth, atol=0.01)


class TestWalkIndex:
    def test_speedppr_sizing_is_degree(self, paper_graph):
        counts = speedppr_walk_counts(paper_graph)
        assert counts.tolist() == paper_graph.out_degree.tolist()

    def test_fora_plus_sizing_covers_needs(self, paper_graph):
        w = 1000.0
        counts = fora_plus_walk_counts(paper_graph, w)
        factor = np.sqrt(w / paper_graph.num_edges)
        needed = np.ceil(paper_graph.out_degree * factor)
        assert np.all(counts >= needed)

    def test_build_and_lookup(self, paper_graph, rng):
        index = build_walk_index(
            paper_graph, speedppr_walk_counts(paper_graph), rng=rng
        )
        assert index.num_walks == paper_graph.num_edges
        assert index.walks_available(1) == 4
        stops = index.stops_for(1, 3)
        assert stops.shape == (3,)

    def test_lookup_beyond_available_raises(self, paper_graph, rng):
        index = build_walk_index(
            paper_graph, speedppr_walk_counts(paper_graph), rng=rng
        )
        with pytest.raises(IndexMismatchError):
            index.stops_for(0, 10)

    def test_graph_mismatch_detected(self, paper_graph, rng):
        index = build_walk_index(
            paper_graph, speedppr_walk_counts(paper_graph), rng=rng
        )
        other = cycle_graph(9)
        with pytest.raises(IndexMismatchError):
            index.check_graph(other)

    def test_dead_ends_rejected(self, dead_end_graph, rng):
        with pytest.raises(IndexBuildError):
            build_walk_index(
                dead_end_graph,
                speedppr_walk_counts(dead_end_graph),
                rng=rng,
            )

    def test_bad_counts_rejected(self, paper_graph, rng):
        with pytest.raises(IndexBuildError):
            build_walk_index(paper_graph, np.array([1, 2]), rng=rng)
        with pytest.raises(IndexBuildError):
            build_walk_index(
                paper_graph, -np.ones(5, dtype=np.int64), rng=rng
            )

    def test_size_bytes_positive_and_consistent(self, paper_graph, rng):
        index = build_walk_index(
            paper_graph, speedppr_walk_counts(paper_graph), rng=rng
        )
        assert index.size_bytes == index.indptr.nbytes + index.stops.nbytes


class TestWalkIndexStorage:
    def test_round_trip(self, paper_graph, rng, tmp_path):
        index = build_walk_index(
            paper_graph,
            speedppr_walk_counts(paper_graph),
            rng=rng,
            policy="speedppr",
        )
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        loaded = load_walk_index(path)
        np.testing.assert_array_equal(loaded.indptr, index.indptr)
        np.testing.assert_array_equal(loaded.stops, index.stops)
        assert loaded.policy == "speedppr"
        assert loaded.alpha == index.alpha
        assert stored_size_bytes(path) > 0

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"nope")
        with pytest.raises(IndexBuildError):
            load_walk_index(path)
