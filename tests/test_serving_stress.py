"""Concurrency stress: readers hammer the server while a writer mutates.

The hard serving invariant (extending the engine-level guarantees of
``tests/test_engine_dynamic.py`` across threads): **no query is ever
answered from a stale-version cache or index**.  Checked two ways:

* *bracketing* — every served answer's version stamp lies between the
  graph version observed before submit and after completion, so the
  answer was computed at a version that was current during the
  request's lifetime;
* *replay* — after the run, the graph is reconstructed at every
  version from the recorded update log and each answer is recomputed
  from scratch; the served vector must be byte-identical to the
  reconstruction's (for the deterministic method) — a cached vector
  from version ``v-1`` served at ``v``, or a stale walk index, cannot
  survive this.
"""

import threading

import numpy as np
import pytest

from repro.api import PPREngine
from repro.core.powerpush import power_push
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.serving import EngineServer

BASE_SEED = 17
L1 = 1e-6


def make_base():
    return rmat_digraph(
        9, 3000, rng=np.random.default_rng(BASE_SEED), name="stress"
    )


def rebuild_at(base, update_log, version):
    """The logical graph at ``version``, replayed from the update log."""
    dyn = DynamicGraph(base)
    for recorded_version, update in update_log:
        if recorded_version > version:
            break
        dyn.apply_updates([update])
    assert dyn.version == version
    return dyn.snapshot()


@pytest.mark.slow
def test_readers_never_see_stale_answers_under_writer_pressure():
    dyn = DynamicGraph(make_base())
    base = dyn.base
    update_log: list[tuple[int, tuple[str, int, int]]] = []
    records = []
    records_mutex = threading.Lock()
    errors: list[BaseException] = []
    stop_writer = threading.Event()

    with EngineServer(dyn, alpha=0.2, seed=7, window=0.001) as server:

        def writer() -> None:
            rng = np.random.default_rng(99)
            try:
                for _ in range(12):
                    if stop_writer.wait(0.004):
                        return
                    update = sample_edge_update(dyn, rng)
                    version = server.apply_updates([update])
                    update_log.append((version, update))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def reader(worker_id: int) -> None:
            try:
                for i in range(25):
                    source = (worker_id * 7 + i) % 10
                    v_before = server.graph_version
                    served = server.query(
                        source, "powerpush", l1_threshold=L1, timeout=30.0
                    )
                    v_after = server.graph_version
                    with records_mutex:
                        records.append(
                            (source, v_before, served.version, v_after,
                             served.result.estimate)
                        )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads[1:]:
            thread.join()
        stop_writer.set()
        threads[0].join()
        stats = server.stats()

    assert not errors, errors
    assert len(records) == 100

    # -- bracketing: the served version was current during the request
    for source, v_before, v_served, v_after, _ in records:
        assert v_before <= v_served <= v_after, (
            f"source {source}: served version {v_served} outside "
            f"[{v_before}, {v_after}]"
        )

    # -- replay: byte-identical to a from-scratch solve at that version
    snapshots = {
        version: rebuild_at(base, update_log, version)
        for version in {r[2] for r in records}
    }
    reference: dict[tuple[int, int], np.ndarray] = {}
    for source, _, v_served, _, estimate in records:
        key = (v_served, source)
        if key not in reference:
            reference[key] = power_push(
                snapshots[v_served], source, l1_threshold=L1, alpha=0.2
            ).estimate
        np.testing.assert_array_equal(
            estimate,
            reference[key],
            err_msg=f"stale answer for source {source} at version {v_served}",
        )

    # The run must actually have exercised the machinery it stresses.
    assert update_log, "writer thread applied no updates"
    assert stats["cache"]["hits"] + stats["cache_hits_at_submit"] > 0
    assert stats["cache"]["invalidations"] > 0


@pytest.mark.slow
def test_stale_walk_index_never_serves_a_seeded_speedppr_query():
    """Same invariant for index-backed queries: SpeedPPR answers are a
    deterministic function of (graph version, engine seed, query seed),
    so a reconstruction with a fresh engine catches any stale index."""
    dyn = DynamicGraph(make_base())
    base = dyn.base
    update_log: list[tuple[int, tuple[str, int, int]]] = []
    records = []
    records_mutex = threading.Lock()
    errors: list[BaseException] = []

    with EngineServer(dyn, alpha=0.2, seed=7, window=0.001) as server:

        def writer() -> None:
            rng = np.random.default_rng(5)
            try:
                for _ in range(6):
                    update = sample_edge_update(dyn, rng)
                    version = server.apply_updates([update])
                    update_log.append((version, update))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader(worker_id: int) -> None:
            try:
                for i in range(8):
                    source = (worker_id + 3 * i) % 8
                    served = server.query(
                        source,
                        "speedppr",
                        epsilon=0.5,
                        seed=13,
                        timeout=30.0,
                    )
                    with records_mutex:
                        records.append(
                            (source, served.version, served.result.estimate)
                        )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(w,)) for w in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors
    snapshots = {
        version: rebuild_at(base, update_log, version)
        for version in {r[1] for r in records}
    }
    engines = {
        version: PPREngine(snapshot, alpha=0.2, seed=7)
        for version, snapshot in snapshots.items()
    }
    reference: dict[tuple[int, int], np.ndarray] = {}
    for source, version, estimate in records:
        key = (version, source)
        if key not in reference:
            reference[key] = engines[version].query(
                source, "speedppr", epsilon=0.5, seed=13
            ).estimate
        np.testing.assert_array_equal(
            estimate,
            reference[key],
            err_msg=(
                f"stale index answer for source {source} at version {version}"
            ),
        )
