"""Write-ahead log and atomic-write unit tests.

The WAL's crash contract in miniature: framed records round-trip, a
torn tail (partial final frame) heals silently because it was never
acknowledged, while every form of mid-log damage — CRC mismatch,
partial frame in a sealed segment, non-contiguous versions — raises
:class:`~repro.errors.WalCorruptionError` instead of silently
recovering a lie.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.durability import (
    WalPosition,
    WriteAheadLog,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    crc32c,
)
from repro.errors import WalCorruptionError

_HEADER = struct.Struct("<II")


def _append_batches(wal, batches, start_version=0):
    version = start_version
    for batch in batches:
        version += len(batch)
        wal.append(version, batch)
    return version


class TestCrc32c:
    def test_standard_check_value(self):
        # The canonical CRC32C (Castagnoli) check value — distinct
        # from zlib.crc32's 0xCBF43926 for the same input.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_and_incremental(self):
        assert crc32c(b"") == 0
        whole = crc32c(b"hello world")
        part = crc32c(b" world", crc32c(b"hello"))
        assert whole == part


class TestAtomicWrite:
    def test_bytes_text_json_round_trip(self, tmp_path):
        target = tmp_path / "artefact.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"
        atomic_write_text(target, "hi")
        assert target.read_text() == "hi"
        atomic_write_json(target, {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}

    def test_replaces_existing_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failure_cleans_up_tmp_file(self, tmp_path):
        class Boom:
            pass

        with pytest.raises(TypeError):
            atomic_write_json(tmp_path / "doc.json", {"bad": Boom()})
        assert list(tmp_path.iterdir()) == []


class TestWalRoundTrip:
    def test_append_replay(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            _append_batches(wal, [[("+", 0, 1)], [("-", 0, 1), ("+", 2, 3)]])
        with WriteAheadLog(tmp_path) as wal:
            records = list(wal.replay())
            assert [r.version for r in records] == [1, 3]
            assert records[1].updates == (("-", 0, 1), ("+", 2, 3))
            assert wal.head_version == 3
            assert wal.record_count == 2

    def test_replay_after_version_skips_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            _append_batches(wal, [[("+", 0, 1)], [("+", 1, 2)], [("+", 2, 3)]])
            assert [r.version for r in wal.replay(after_version=1)] == [2, 3]

    def test_empty_log(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.head_version is None
            assert wal.record_count == 0
            assert list(wal.replay()) == []
            assert wal.position == WalPosition(0, 0)


class TestTornTail:
    def test_every_truncation_of_last_record_heals(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            _append_batches(wal, [[("+", 0, 1)], [("+", 1, 2)]])
        segment = tmp_path / "wal-00000000.log"
        whole = segment.read_bytes()
        length, _ = _HEADER.unpack_from(whole, 0)
        first_frame = _HEADER.size + length
        for cut in range(first_frame + 1, len(whole)):
            segment.write_bytes(whole[:cut])
            with WriteAheadLog(tmp_path) as wal:
                # The torn record vanishes; the log stays appendable.
                assert wal.head_version == 1
                assert wal.record_count == 1
                wal.append(2, [("+", 1, 2)])
                assert wal.head_version == 2
            segment.write_bytes(whole)

    def test_torn_tail_is_truncated_on_disk(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
        segment = tmp_path / "wal-00000000.log"
        intact = segment.stat().st_size
        segment.write_bytes(segment.read_bytes() + b"\x07\x00")
        with WriteAheadLog(tmp_path):
            pass
        assert segment.stat().st_size == intact


class TestCorruption:
    def test_crc_mismatch_is_typed_corruption(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
        segment = tmp_path / "wal-00000000.log"
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte under an intact header
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="CRC32C mismatch"):
            WriteAheadLog(tmp_path)

    def test_partial_frame_in_sealed_segment_is_corruption(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
            wal.rotate()
            wal.append(2, [("+", 1, 2)])
        first = tmp_path / "wal-00000000.log"
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(WalCorruptionError, match="non-final"):
            WriteAheadLog(tmp_path)

    def test_non_contiguous_versions_are_corruption(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
            wal.append(5, [("+", 1, 2)])  # skips versions 2..4
        with pytest.raises(WalCorruptionError, match="not contiguous"):
            WriteAheadLog(tmp_path)

    def test_absurd_length_field_is_corruption(self, tmp_path):
        segment = tmp_path / "wal-00000000.log"
        tmp_path.mkdir(exist_ok=True)
        payload = b"x" * 16
        segment.write_bytes(
            _HEADER.pack(1 << 31, crc32c(payload)) + payload
        )
        with pytest.raises(WalCorruptionError, match="corrupt length"):
            WriteAheadLog(tmp_path)

    def test_valid_crc_invalid_payload_is_corruption(self, tmp_path):
        segment = tmp_path / "wal-00000000.log"
        tmp_path.mkdir(exist_ok=True)
        payload = b'{"not": "a batch"}'
        segment.write_bytes(_HEADER.pack(len(payload), crc32c(payload)) + payload)
        with pytest.raises(WalCorruptionError, match="not a valid"):
            WriteAheadLog(tmp_path)


class TestSegments:
    def test_rotate_and_prune(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
            new_seg = wal.rotate()
            wal.append(2, [("+", 1, 2)])
            assert wal.segments == (0, new_seg)
            assert wal.prune_upto(new_seg) == 1
            assert wal.segments == (new_seg,)
        # Pruned history is gone; the survivor still replays.
        with WriteAheadLog(tmp_path) as wal:
            assert [r.version for r in wal.replay()] == [2]

    def test_prune_never_touches_active_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, [("+", 0, 1)])
            assert wal.prune_upto(99) == 0
            assert wal.segments == (0,)

    def test_replay_spans_segments_with_contiguity(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(2, [("+", 0, 1), ("+", 1, 2)])
            wal.rotate()
            wal.append(3, [("-", 0, 1)])
        with WriteAheadLog(tmp_path) as wal:
            assert [r.version for r in wal.replay()] == [2, 3]
            assert wal.head_version == 3
