"""Backend registry, selection precedence, fallback, and equivalence.

Covers the pluggable compute-backend layer (:mod:`repro.backends`):

* registry behaviour — lookup, case-insensitivity, unknown-name errors
  listing the choices, third-party registration;
* selection precedence — explicit argument > ``REPRO_PPR_BACKEND`` >
  numpy default — at the solver, engine, and CLI levels;
* the numba-missing fallback: serves numpy, warns exactly once;
* byte-identity of the explicit numpy backend with the default path;
* the empty-frontier fast path (zero workspace requests);
* numpy vs numba numerical equivalence on randomized graphs (skipped
  when numba is not installed — the dedicated CI job runs it).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.backends as backends
from repro.api import PPREngine
from repro.api.registry import solve
from repro.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    numba_available,
    registered_backends,
    resolve_backend,
)
from repro.core import kernels
from repro.core.powerpush import power_push, power_push_block
from repro.core.residues import BlockPushState, PushState
from repro.core.workspace import Workspace
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.build import from_edges, star_graph


@pytest.fixture(autouse=True)
def _fresh_backend_state():
    """Isolate the warn-once flag and instance cache per test."""
    backends._reset_backend_state()
    yield
    backends._reset_backend_state()


def _graph(seed: int = 7, scale: int = 7, edges: int = 700):
    return rmat_digraph(scale, edges, rng=np.random.default_rng(seed))


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert get_backend("numpy").name == "numpy"

    def test_numba_always_registered(self):
        # Registered regardless of availability: the name is a valid
        # spelling everywhere, falling back when the extra is missing.
        assert "numba" in registered_backends()

    def test_lookup_is_case_insensitive(self):
        assert get_backend("NumPy") is get_backend("numpy")

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ParameterError) as excinfo:
            get_backend("tpu")
        message = str(excinfo.value)
        assert "tpu" in message
        assert "numpy" in message and "numba" in message

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ParameterError):
            backends.register_backend("numpy", NumpyBackend)

    def test_third_party_registration(self):
        class Custom(KernelBackend):
            name = "custom-test"

        try:
            backends.register_backend("custom-test", Custom)
            assert "custom-test" in available_backends()
            assert resolve_backend("custom-test").name == "custom-test"
            # Non-reference backends dispatch through the kernel layer.
            assert active_backend("custom-test") is get_backend("custom-test")
        finally:
            backends._FACTORIES.pop("custom-test", None)
            backends._reset_backend_state()

    def test_importing_repro_does_not_import_numba(self):
        # The numba import is deferred to first NumbaBackend use, so
        # plain `import repro` (and numpy-only queries) never pay it.
        import os
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys, repro; "
            "sys.exit(1 if 'numba' in sys.modules else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 0

    def test_resolve_accepts_instances_unregistered(self):
        class AdHoc(KernelBackend):
            name = "ad-hoc"

        instance = AdHoc()
        assert resolve_backend(instance) is instance
        assert active_backend(instance) is instance


class TestSelectionPrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"
        # The reference resolves to "no dispatch" for the kernels.
        assert active_backend(None) is None

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_env_var_unknown_name_mentions_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        with pytest.raises(ParameterError) as excinfo:
            resolve_backend(None)
        assert BACKEND_ENV_VAR in str(excinfo.value)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        # An explicit argument never consults the (broken) env var.
        assert resolve_backend("numpy").name == "numpy"

    def test_solver_picks_up_env_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        with pytest.raises(ParameterError):
            power_push(_graph(), 0)

    def test_engine_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        engine = PPREngine(_graph(), backend="numpy")
        assert engine.backend is not None
        assert engine.backend.name == "numpy"

    def test_engine_resolves_backend_at_construction(self):
        with pytest.raises(ParameterError):
            PPREngine(_graph(), backend="warp-drive")

    def test_engine_injects_backend_into_queries(self):
        class Counting(NumpyBackend):
            name = "counting-test"

            def __init__(self):
                self.calls = 0

            def sweep_active(self, *args, **kwargs):
                self.calls += 1
                return super().sweep_active(*args, **kwargs)

            def frontier_push(self, *args, **kwargs):
                self.calls += 1
                return super().frontier_push(*args, **kwargs)

        counting = Counting()
        engine = PPREngine(_graph(), backend=counting)
        engine.query(0, "powerpush", l1_threshold=1e-6)
        assert counting.calls > 0

    def test_registry_rejects_backend_for_backendless_methods(self):
        with pytest.raises(ParameterError, match="does not accept"):
            solve(_graph(), 0, "montecarlo", backend="numpy", num_walks=10)


class TestFallback:
    def test_missing_numba_warns_exactly_once(self, monkeypatch):
        monkeypatch.setattr(
            "repro.backends.numba_backend.NUMBA_AVAILABLE", False
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = get_backend("numba")
            second = get_backend("numba")
        assert first.name == "numpy" and second.name == "numpy"
        fallback_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback_warnings) == 1
        assert "numba" in str(fallback_warnings[0].message)
        assert "repro-ppr[numba]" in str(fallback_warnings[0].message)

    def test_fallback_answers_match_reference(self, monkeypatch):
        monkeypatch.setattr(
            "repro.backends.numba_backend.NUMBA_AVAILABLE", False
        )
        graph = _graph()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            via_fallback = power_push(graph, 3, backend="numba")
        reference = power_push(graph, 3)
        np.testing.assert_array_equal(
            via_fallback.estimate, reference.estimate
        )


class TestNumpyBackendIdentity:
    """backend="numpy" must be byte-identical to no backend at all."""

    def test_power_push_identical(self):
        graph = _graph()
        default = power_push(graph, 5)
        explicit = power_push(graph, 5, backend="numpy")
        np.testing.assert_array_equal(default.estimate, explicit.estimate)
        np.testing.assert_array_equal(default.residue, explicit.residue)
        assert (
            default.counters.residue_updates
            == explicit.counters.residue_updates
        )

    def test_block_identical(self):
        graph = _graph()
        sources = [0, 3, 9, 11]
        default = power_push_block(graph, sources)
        explicit = power_push_block(graph, sources, backend="numpy")
        for a, b in zip(default, explicit):
            np.testing.assert_array_equal(a.estimate, b.estimate)

    def test_engine_batch_identical(self):
        graph = _graph()
        plain = PPREngine(graph, seed=1).batch_query([1, 2, 3], "powerpush")
        picked = PPREngine(graph, seed=1, backend="numpy").batch_query(
            [1, 2, 3], "powerpush"
        )
        for a, b in zip(plain, picked):
            np.testing.assert_array_equal(a.estimate, b.estimate)


class TestEmptyFrontierFastPath:
    """Empty frontiers must not touch the workspace (satellite fix)."""

    def test_frontier_push_empty_nodes(self):
        graph = _graph()
        state = PushState(graph, 0)
        workspace = Workspace()
        kernels.frontier_push(
            state, np.empty(0, dtype=np.int64), workspace=workspace
        )
        assert workspace.requests == 0
        assert state.r_sum == 1.0

    def test_frontier_edge_targets_empty_nodes(self):
        graph = _graph()
        workspace = Workspace()
        targets, counts = kernels.frontier_edge_targets(
            graph, np.empty(0, dtype=np.int64), workspace=workspace
        )
        assert targets.shape[0] == 0 and counts.shape[0] == 0
        assert workspace.requests == 0

    def test_frontier_push_all_dead_frontier(self):
        graph = star_graph(4, bidirectional=False)  # leaves are dead ends
        state = PushState(graph, 0)
        state.residue[:] = 0.25
        state.refresh_r_sum()
        workspace = Workspace()
        # Pushing only dead ends gathers zero edges: no scatter, no
        # workspace traffic, yet reserves/dead-mass still settle.
        kernels.frontier_push(
            state,
            graph.dead_ends.astype(np.int64),
            workspace=workspace,
        )
        assert workspace.requests == 0
        assert state.counters.pushes == graph.dead_ends.shape[0]

    def test_block_frontier_push_empty_rows(self):
        graph = _graph()
        state = BlockPushState(graph, [0, 1])
        workspace = Workspace()
        kernels.block_frontier_push(
            state,
            np.empty(0, dtype=np.int64),
            np.zeros((0, graph.num_nodes), dtype=bool),
            workspace=workspace,
        )
        assert workspace.requests == 0

    def test_block_frontier_push_all_false_masks(self):
        graph = _graph()
        state = BlockPushState(graph, [0, 1])
        workspace = Workspace()
        kernels.block_frontier_push(
            state,
            np.arange(2),
            np.zeros((2, graph.num_nodes), dtype=bool),
            workspace=workspace,
        )
        assert workspace.requests == 0
        np.testing.assert_array_equal(state.pushes, [0, 0])


needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (optional extra)"
)

#: Compiled loops accumulate sequentially where NumPy reduces pairwise.
EQUIV_TOL = 1e-12


@needs_numba
class TestNumbaEquivalence:
    """Compiled answers agree with the reference within 1e-12 L1."""

    def _graphs(self):
        for seed in (1, 2, 3):
            yield rmat_digraph(7, 900, rng=np.random.default_rng(seed))
        yield star_graph(6, bidirectional=False)  # dead ends
        yield from_edges([(0, 1), (1, 0), (1, 2), (2, 0), (2, 2)])

    def test_power_push_matches(self):
        for graph in self._graphs():
            for source in (0, graph.num_nodes - 1):
                reference = power_push(graph, source, l1_threshold=1e-8)
                compiled = power_push(
                    graph, source, l1_threshold=1e-8, backend="numba"
                )
                deviation = float(
                    np.abs(reference.estimate - compiled.estimate).sum()
                )
                assert deviation <= EQUIV_TOL
                assert compiled.r_sum <= 1e-8

    def test_power_push_block_matches(self):
        graph = rmat_digraph(8, 2000, rng=np.random.default_rng(9))
        sources = [0, 5, 17, 40, 41, 99]
        reference = power_push_block(graph, sources)
        compiled = power_push_block(graph, sources, backend="numba")
        for ref, ours in zip(reference, compiled):
            deviation = float(np.abs(ref.estimate - ours.estimate).sum())
            assert deviation <= EQUIV_TOL
            assert ours.source == ref.source

    def test_dead_end_policies_match(self):
        graph = star_graph(6, bidirectional=False)
        for policy in ("redirect-to-source", "uniform-teleport"):
            reference = power_push(graph, 0, dead_end_policy=policy)
            compiled = power_push(
                graph, 0, dead_end_policy=policy, backend="numba"
            )
            deviation = float(
                np.abs(reference.estimate - compiled.estimate).sum()
            )
            assert deviation <= EQUIV_TOL

    def test_other_solvers_match(self):
        from repro.core.fifo_fwdpush import fifo_forward_push
        from repro.core.power_iteration import power_iteration
        from repro.core.sim_fwdpush import simultaneous_forward_push

        graph = rmat_digraph(7, 900, rng=np.random.default_rng(4))
        for solver, kwargs in (
            (fifo_forward_push, {"l1_threshold": 1e-7}),
            (power_iteration, {"l1_threshold": 1e-8}),
            (simultaneous_forward_push, {"l1_threshold": 1e-8}),
        ):
            reference = solver(graph, 2, **kwargs)
            compiled = solver(graph, 2, backend="numba", **kwargs)
            deviation = float(
                np.abs(reference.estimate - compiled.estimate).sum()
            )
            assert deviation <= EQUIV_TOL

    def test_workspace_reuse_stays_flat(self):
        graph = rmat_digraph(8, 2000, rng=np.random.default_rng(5))
        workspace = Workspace()
        power_push_block(
            graph, [0, 1, 2, 3], backend="numba", workspace=workspace
        )
        first = workspace.allocations
        power_push_block(
            graph, [4, 5, 6, 7], backend="numba", workspace=workspace
        )
        # A second same-shaped solve through the same pool must reuse
        # every buffer (geometric growth may add a few on the first).
        assert workspace.allocations == first


def _load_numba_backend_with_stub():
    """Instantiate the numba backend over an identity-decorator stub.

    Runs the compiled-loop *logic* as plain Python (``njit`` returns
    the function unchanged, ``prange`` is ``range``), so the numerical
    behaviour of the numba backend is exercised on every CI run — even
    the numba-free ones — leaving only numba's typing/compilation to
    the dedicated numba job.  Returns a live backend instance whose
    kernels were built against the stub.
    """
    import importlib.machinery
    import importlib.util
    import sys
    import types
    from pathlib import Path

    import repro.backends.numba_backend as real_module

    fake = types.ModuleType("numba")
    # A real-looking spec so importlib.util.find_spec("numba") (the
    # module's availability probe) sees the stub as installed.
    fake.__spec__ = importlib.machinery.ModuleSpec("numba", loader=None)

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorator(fn):
            return fn

        return decorator

    fake.njit = njit
    fake.prange = range

    saved = sys.modules.get("numba")
    sys.modules["numba"] = fake
    try:
        spec = importlib.util.spec_from_file_location(
            "repro_backends_numba_stubbed", Path(real_module.__file__)
        )
        module = importlib.util.module_from_spec(spec)
        assert spec.loader is not None
        spec.loader.exec_module(module)
        assert module.NUMBA_AVAILABLE
        # Instantiation triggers the lazy `from numba import njit`,
        # which must resolve to the stub — keep it in sys.modules.
        backend = module.NumbaBackend()
    finally:
        if saved is None:
            del sys.modules["numba"]
        else:
            sys.modules["numba"] = saved
    return backend


class TestNumbaLogicViaStub:
    """The numba kernels' arithmetic, checked without numba installed."""

    @pytest.fixture(scope="class")
    def stub_backend(self):
        return _load_numba_backend_with_stub()

    def _graphs(self):
        for seed in (1, 2):
            yield rmat_digraph(6, 400, rng=np.random.default_rng(seed))
        yield star_graph(5, bidirectional=False)  # dead ends
        yield from_edges([(0, 1), (1, 0), (1, 2), (2, 0), (2, 2)])

    def test_power_push_matches_reference(self, stub_backend):
        for graph in self._graphs():
            reference = power_push(graph, 0, l1_threshold=1e-7)
            compiled = power_push(
                graph, 0, l1_threshold=1e-7, backend=stub_backend
            )
            deviation = float(
                np.abs(reference.estimate - compiled.estimate).sum()
            )
            assert deviation <= EQUIV_TOL
            assert compiled.r_sum <= 1e-7

    def test_block_matches_reference(self, stub_backend):
        graph = rmat_digraph(7, 900, rng=np.random.default_rng(8))
        sources = [0, 3, 11, 12, 50]
        reference = power_push_block(graph, sources)
        compiled = power_push_block(graph, sources, backend=stub_backend)
        for ref, ours in zip(reference, compiled):
            deviation = float(np.abs(ref.estimate - ours.estimate).sum())
            assert deviation <= EQUIV_TOL
            # Billing is integer arithmetic: must agree exactly when
            # the push schedules coincide (they do at these sizes).
            assert (
                ours.counters.residue_updates
                == ref.counters.residue_updates
            )

    def test_dead_end_policies_match(self, stub_backend):
        graph = star_graph(5, bidirectional=False)
        for policy in ("redirect-to-source", "uniform-teleport"):
            reference = power_push(graph, 0, dead_end_policy=policy)
            compiled = power_push(
                graph, 0, dead_end_policy=policy, backend=stub_backend
            )
            deviation = float(
                np.abs(reference.estimate - compiled.estimate).sum()
            )
            assert deviation <= EQUIV_TOL

    def test_other_solvers_match(self, stub_backend):
        from repro.core.fifo_fwdpush import fifo_forward_push
        from repro.core.power_iteration import power_iteration
        from repro.core.sim_fwdpush import simultaneous_forward_push

        graph = rmat_digraph(6, 400, rng=np.random.default_rng(4))
        for solver, kwargs in (
            (fifo_forward_push, {"l1_threshold": 1e-7}),
            (power_iteration, {"l1_threshold": 1e-8}),
            (simultaneous_forward_push, {"l1_threshold": 1e-8}),
        ):
            reference = solver(graph, 2, **kwargs)
            compiled = solver(graph, 2, backend=stub_backend, **kwargs)
            deviation = float(
                np.abs(reference.estimate - compiled.estimate).sum()
            )
            assert deviation <= EQUIV_TOL

    def test_block_sweep_active_per_row_switch(self, stub_backend):
        graph = rmat_digraph(6, 400, rng=np.random.default_rng(6))
        n = graph.num_nodes
        reference_state = BlockPushState(graph, [0, 1])
        stub_state = BlockPushState(graph, [0, 1])
        # Row 0 dense (everything active), row 1 sparse: exercises both
        # branches of the per-row global/local switch in one call.
        for state in (reference_state, stub_state):
            state.residue[0, :] = 1.0 / n
            state.refresh_r_sum(0)
        masks = np.zeros((2, n), dtype=bool)
        masks[0, :] = True
        masks[1, [0, 1]] = True
        rows = np.arange(2)
        kernels.block_sweep_active(reference_state, rows, masks.copy())
        kernels.block_sweep_active(
            stub_state, rows, masks.copy(), backend=stub_backend
        )
        for row in range(2):
            deviation = float(
                np.abs(
                    reference_state.residue[row] - stub_state.residue[row]
                ).sum()
            )
            assert deviation <= EQUIV_TOL
            np.testing.assert_equal(
                stub_state.pushes[row], reference_state.pushes[row]
            )


class TestCLI:
    def test_list_shows_backends(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out
        assert "numpy: available" in out

    def test_query_parses_backend_and_reorder(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "dblp-s", "--backend", "numba", "--reorder", "degree"]
        )
        assert args.backend == "numba"
        assert args.reorder == "degree"

    def test_bench_kernels_parses_backends(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench-kernels", "--backends", "numpy,numba"]
        )
        assert args.backends == "numpy,numba"
