"""IncrementalPPR: push-invariant corrections match from-scratch solves.

The load-bearing guarantee: after any stream of journalled edge
updates, ``refresh()`` produces an estimate certified to the same
``l1_threshold`` as a from-scratch PowerPush on the compacted graph —
so the two answers agree within the sum of the two certificates — and
(for realistic perturbations) pays measurably fewer residue updates.
"""

import numpy as np
import pytest

from repro.core.incremental import IncrementalPPR
from repro.core.powerpush import power_push
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.build import from_edges
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.instrumentation.tracing import ConvergenceTrace

ALPHA = 0.2
LAMBDA = 1e-8


def make_dynamic(scale: int, edges: int, seed: int) -> DynamicGraph:
    rng = np.random.default_rng(seed)
    return DynamicGraph(rmat_digraph(scale, edges, rng=rng, name="rmat-dyn"))


def scratch_solve(dyn: DynamicGraph, source: int):
    return power_push(
        dyn.snapshot(), source, alpha=ALPHA, l1_threshold=LAMBDA
    )


class TestSingleUpdate:
    @pytest.mark.parametrize("op", ["+", "-"])
    def test_one_update_matches_scratch(self, op):
        dyn = make_dynamic(9, 3000, seed=11)
        rng = np.random.default_rng(23)
        tracker = IncrementalPPR(
            dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA
        )
        while True:
            candidate = sample_edge_update(dyn, rng)
            if candidate[0] == op:
                break
        dyn.apply_updates([candidate])
        result = tracker.refresh()
        scratch = scratch_solve(dyn, 0)
        gap = float(np.abs(result.estimate - scratch.estimate).sum())
        assert tracker.error_bound <= LAMBDA
        assert gap <= tracker.error_bound + scratch.r_sum + 1e-14
        assert result.counters.extras["residue_corrections"] == 1

    def test_estimate_sums_to_one_within_bound(self):
        dyn = make_dynamic(9, 3000, seed=11)
        rng = np.random.default_rng(23)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        for _ in range(10):
            dyn.apply_updates([sample_edge_update(dyn, rng)])
        result = tracker.refresh()
        assert abs(float(result.estimate.sum()) - 1.0) <= LAMBDA


class TestRandomizedEquivalence:
    """Seeded k-update streams: the PR's acceptance-criterion test."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_k_random_updates_match_scratch(self, seed):
        dyn = make_dynamic(10, 6000, seed=seed)
        rng = np.random.default_rng(seed + 1000)
        source = int(rng.integers(0, dyn.num_nodes))
        tracker = IncrementalPPR(
            dyn, source, alpha=ALPHA, l1_threshold=LAMBDA
        )
        for _ in range(60):
            dyn.apply_updates([sample_edge_update(dyn, rng)])
        result = tracker.refresh()
        scratch = scratch_solve(dyn, source)
        gap = float(np.abs(result.estimate - scratch.estimate).sum())
        assert tracker.error_bound <= LAMBDA
        assert scratch.r_sum <= LAMBDA
        assert gap <= tracker.error_bound + scratch.r_sum + 1e-14

    def test_100_updates_on_rmat_fewer_residue_updates(self):
        """Acceptance: same certified result, measurably fewer updates.

        Both cost counters come from ConvergenceTrace recordings, the
        same instrumentation Figure 6 uses.
        """
        dyn = make_dynamic(11, 16_000, seed=3)
        rng = np.random.default_rng(99)
        source = 3
        tracker = IncrementalPPR(
            dyn, source, alpha=ALPHA, l1_threshold=LAMBDA
        )
        for _ in range(100):
            dyn.apply_updates([sample_edge_update(dyn, rng)])

        inc_trace = ConvergenceTrace()
        result = tracker.refresh(trace=inc_trace)
        scratch_trace = ConvergenceTrace()
        scratch = power_push(
            dyn.snapshot(),
            source,
            alpha=ALPHA,
            l1_threshold=LAMBDA,
            trace=scratch_trace,
        )

        # Same r_max-certified contract on the compacted graph ...
        assert tracker.error_bound <= LAMBDA
        assert scratch.r_sum <= LAMBDA
        gap = float(np.abs(result.estimate - scratch.estimate).sum())
        assert gap <= tracker.error_bound + scratch.r_sum + 1e-14
        # ... and both traces certify it (final r_sum sample <= lambda).
        assert inc_trace.points[-1].r_sum <= LAMBDA
        assert scratch_trace.points[-1].r_sum <= LAMBDA

        # Measurably fewer residue updates, per the traces' counters.
        inc_updates = inc_trace.points[-1].residue_updates
        scratch_updates = scratch_trace.points[-1].residue_updates
        assert inc_updates == result.counters.residue_updates
        assert scratch_updates == scratch.counters.residue_updates
        assert inc_updates < 0.8 * scratch_updates

    def test_interleaved_refreshes_stay_consistent(self):
        dyn = make_dynamic(9, 3000, seed=5)
        rng = np.random.default_rng(6)
        tracker = IncrementalPPR(dyn, 1, alpha=ALPHA, l1_threshold=LAMBDA)
        for _ in range(4):
            for _ in range(15):
                dyn.apply_updates([sample_edge_update(dyn, rng)])
            result = tracker.refresh()
            scratch = scratch_solve(dyn, 1)
            gap = float(np.abs(result.estimate - scratch.estimate).sum())
            assert gap <= tracker.error_bound + scratch.r_sum + 1e-14
            assert not tracker.stale


class TestLifecycle:
    def test_idle_refresh_is_free(self):
        dyn = make_dynamic(9, 3000, seed=2)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        result = tracker.refresh()
        assert result.counters.residue_updates == 0
        assert result.counters.pushes == 0

    def test_stale_flag_and_version(self):
        dyn = make_dynamic(9, 3000, seed=2)
        rng = np.random.default_rng(8)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        assert not tracker.stale and tracker.version == 0
        dyn.apply_updates([sample_edge_update(dyn, rng)])
        assert tracker.stale
        tracker.refresh()
        assert not tracker.stale and tracker.version == dyn.version

    def test_requires_dynamic_graph(self, paper_graph):
        with pytest.raises(ParameterError, match="DynamicGraph"):
            IncrementalPPR(paper_graph, 0)

    def test_dead_end_graph_rejected_at_init(self):
        base = from_edges([(0, 1), (1, 0), (1, 2)])  # 2 is a dead end
        with pytest.raises(ParameterError, match="dead-end-free"):
            IncrementalPPR(DynamicGraph(base), 0)

    def test_dead_end_created_by_update_rejected_at_refresh(self):
        base = from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        dyn = DynamicGraph(base)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        dyn.remove_edge(2, 0)  # 2 becomes a dead end
        with pytest.raises(ParameterError, match="dead-end-free"):
            tracker.refresh()

    def test_trimmed_journal_falls_back_to_rebuild(self):
        dyn = make_dynamic(9, 3000, seed=4)
        rng = np.random.default_rng(12)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        for _ in range(5):
            dyn.apply_updates([sample_edge_update(dyn, rng)])
        dyn.trim_journal(dyn.version)  # tracker can no longer replay
        result = tracker.refresh()
        assert result.counters.extras.get("full_rebuilds") == 1
        scratch = scratch_solve(dyn, 0)
        gap = float(np.abs(result.estimate - scratch.estimate).sum())
        assert gap <= tracker.error_bound + scratch.r_sum + 1e-14
        assert not tracker.stale

    def test_degree_boundary_update_falls_back_to_rebuild(self):
        """Deleting a last-out-edge then re-inserting another has no
        local correction (the old transition row vanishes); the tracker
        must detect it and rebuild, still matching scratch."""
        base = from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 0), (0, 2), (2, 1)]
        )
        dyn = DynamicGraph(base)
        tracker = IncrementalPPR(dyn, 0, alpha=ALPHA, l1_threshold=LAMBDA)
        dyn.remove_edge(2, 0)
        dyn.remove_edge(2, 1)   # degree 1 -> 0: no local correction
        dyn.add_edge(2, 1)      # degree 0 -> 1: no local correction
        result = tracker.refresh()
        assert result.counters.extras.get("full_rebuilds") == 1
        scratch = scratch_solve(dyn, 0)
        gap = float(np.abs(result.estimate - scratch.estimate).sum())
        assert gap <= tracker.error_bound + scratch.r_sum + 1e-14
