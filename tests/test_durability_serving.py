"""Durable serving: cold restart of EngineServer and ShardedDispatcher.

The acceptance contract is byte-identity: a server restarted from
``wal_dir`` must answer every query with exactly the bytes an
uninterrupted server would produce (``per_source_rng`` purity makes
equality exact), at exactly the version it acknowledged before dying.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.serving.server import EngineServer
from repro.serving.sharded import ShardedDispatcher


def _base(seed=5, scale=7, edges=600):
    return rmat_digraph(
        scale, edges, rng=np.random.default_rng(seed), name="durable-serve"
    )


def _updates(base, count, seed=23):
    scratch = DynamicGraph(base)
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        update = sample_edge_update(scratch, rng)
        scratch.apply_updates([update])
        out.append(update)
    return out


class TestEngineServerDurability:
    def test_restart_restores_version_and_answers(self, tmp_path):
        base = _base()
        updates = _updates(base, 8)
        wal_dir = tmp_path / "state"

        with EngineServer(
            DynamicGraph(base), alpha=0.2, seed=7, wal_dir=wal_dir
        ) as server:
            assert server.apply_updates(updates[:5]) == 5
            assert server.apply_updates(updates[5:]) == 8
            before = server.query(
                3, "powerpush", l1_threshold=1e-6
            ).result.estimate

        with EngineServer(
            DynamicGraph(base), alpha=0.2, seed=7, wal_dir=wal_dir
        ) as server:
            assert server.graph_version == 8
            after = server.query(
                3, "powerpush", l1_threshold=1e-6
            ).result.estimate
            assert np.array_equal(before, after)
            # The recovered server keeps accepting durable updates.
            more = _updates(base, 9, seed=91)[8:]
            assert server.apply_updates(more) == 9

    def test_restart_matches_uninterrupted_run(self, tmp_path):
        base = _base()
        updates = _updates(base, 6)
        with EngineServer(
            DynamicGraph(base), alpha=0.2, seed=7, wal_dir=tmp_path / "s"
        ) as server:
            server.apply_updates(updates)
        with EngineServer(
            DynamicGraph(base), alpha=0.2, seed=7, wal_dir=tmp_path / "s"
        ) as recovered:
            reference = DynamicGraph(base)
            reference.apply_updates(updates)
            engine = PPREngine(reference, alpha=0.2, seed=7)
            for source in (0, 2, 11):
                served = recovered.query(
                    source, "speedppr", epsilon=0.5, seed=3
                ).result.estimate
                direct = engine.query(
                    source, method="speedppr", epsilon=0.5, seed=3
                ).estimate
                assert np.array_equal(served, direct)

    def test_wal_dir_requires_graph_not_engine(self, tmp_path):
        engine = PPREngine(DynamicGraph(_base()), alpha=0.2, seed=7)
        with pytest.raises(ParameterError, match="wal_dir"):
            EngineServer(engine, wal_dir=tmp_path / "s")

    def test_wal_dir_and_durability_are_exclusive(self, tmp_path):
        from repro.durability import open_durable_graph

        manager, graph = open_durable_graph(tmp_path / "a", _base())
        try:
            with pytest.raises(ParameterError, match="not both"):
                EngineServer(
                    graph, wal_dir=tmp_path / "b", durability=manager
                )
        finally:
            manager.close()

    def test_durability_must_own_the_served_graph(self, tmp_path):
        from repro.durability import open_durable_graph

        manager, _graph = open_durable_graph(tmp_path / "a", _base())
        stranger = DynamicGraph(_base(seed=9))
        try:
            with pytest.raises(ParameterError, match="graph"):
                EngineServer(stranger, durability=manager)
        finally:
            manager.close()


class TestShardedDurability:
    def test_cold_restart_round_trip(self, tmp_path):
        base = _base(scale=8, edges=1000)
        updates = _updates(base, 10)
        wal_dir = tmp_path / "cluster"

        with ShardedDispatcher(
            DynamicGraph(base), workers=2, wal_dir=wal_dir,
            checkpoint_every=6,
        ) as dispatcher:
            assert dispatcher.apply_updates(updates[:4]) == 4
            assert dispatcher.apply_updates(updates[4:]) == 10
            before = dispatcher.query(
                3, method="powerpush", l1_threshold=1e-6
            ).result.estimate

        with ShardedDispatcher(
            DynamicGraph(base), workers=2, wal_dir=wal_dir
        ) as dispatcher:
            assert dispatcher.recovered_version == 10
            assert dispatcher.graph_version == 10
            after = dispatcher.query(
                3, method="powerpush", l1_threshold=1e-6
            ).result.estimate
            assert np.array_equal(before, after)
            # Updates keep flowing at the recovered version offset.
            more = _updates(base, 11, seed=77)[10:]
            assert dispatcher.apply_updates(more) == 11

    def test_respawn_catches_up_from_recovered_offset(self, tmp_path):
        base = _base(scale=8, edges=1000)
        updates = _updates(base, 8)
        wal_dir = tmp_path / "cluster"
        with ShardedDispatcher(
            DynamicGraph(base), workers=2, wal_dir=wal_dir
        ) as dispatcher:
            dispatcher.apply_updates(updates[:6])

        with ShardedDispatcher(
            DynamicGraph(base), workers=2, wal_dir=wal_dir, max_restarts=2
        ) as dispatcher:
            dispatcher.apply_updates(updates[6:])
            # Kill one worker; the respawn must replay only the
            # post-recovery journal (offset by the recovered version).
            import os
            import signal

            os.kill(dispatcher._states[0].process.pid, signal.SIGKILL)
            answer = dispatcher.query(
                5, method="powerpush", l1_threshold=1e-6
            )
            assert answer.version == 8

            reference = DynamicGraph(base)
            reference.apply_updates(updates)
            engine = PPREngine(reference, alpha=0.2, seed=0)
            direct = engine.query(
                5, method="powerpush", l1_threshold=1e-6
            ).estimate
            assert np.array_equal(answer.result.estimate, direct)

    def test_wal_dir_rejects_static_graph(self, tmp_path):
        with pytest.raises(ParameterError, match="dynamic"):
            ShardedDispatcher(
                _base(), workers=2, dynamic=False, wal_dir=tmp_path / "s"
            )
