"""Tests for the ``repro-ppr`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "F4", "--full"])
        assert args.experiment == "F4"
        assert args.full

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "dblp-s"])
        assert args.method == "powerpush"
        assert args.source == 0

    def test_query_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "unknown-s"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "dblp-s" in out
        assert "DY" in out  # the dynamic-updates experiment is registered

    def test_methods_prints_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        from repro.api import solver_specs

        for spec in solver_specs():
            assert f"{spec.name} [{spec.kind}]" in out
            for alias in spec.aliases:
                assert alias in out
        # capability flags and the engine-level incremental method
        assert "walk-index" in out and "precomputation" in out
        assert "incremental [engine]" in out

    def test_query_incremental_method(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert (
            main(
                [
                    "query",
                    "dblp-s",
                    "--source",
                    "1",
                    "--method",
                    "incremental",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "IncrementalPPR" in out and "#1" in out

    def test_update_bench_smoke(self, capsys, tmp_path):
        out_file = tmp_path / "dyn.txt"
        code = main(
            [
                "update-bench",
                "--scale",
                "9",
                "--edges",
                "3000",
                "--batches",
                "1",
                "--batch-size",
                "10",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "incremental" in out and "ratio" in out
        assert out_file.read_text().strip() in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "method",
        [
            # canonical names
            "powerpush",
            "powitr",
            "fifo-fwdpush",
            "fwdpush-scheduled",
            "simfwdpush",
            "bepi",
            "speedppr",
            "fora",
            "resacc",
            "montecarlo",
            # aliases keep working (registry normalisation)
            "fwdpush",
            "power-iteration",
            "fora+",
            "speedppr-index",
            "mc",
        ],
    )
    def test_query_every_method(self, capsys, monkeypatch, tmp_path, method):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        code = main(
            [
                "query",
                "dblp-s",
                "--source",
                "1",
                "--method",
                method,
                "--epsilon",
                "0.5",
                "--top",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#1" in out

    def test_query_unknown_method_exits_2_listing_names(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert main(["query", "dblp-s", "--method", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "powerpush" in err and "fwdpush" in err

    def _query_output(self, capsys, monkeypatch, tmp_path, seed):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert (
            main(
                [
                    "query",
                    "dblp-s",
                    "--method",
                    "montecarlo",
                    "--epsilon",
                    "0.5",
                    "--seed",
                    str(seed),
                    "--top",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # keep only the ranking lines (the header includes wall time)
        return [line for line in out.splitlines() if line.startswith("  #")]

    def test_query_seed_makes_stochastic_methods_reproducible(
        self, capsys, monkeypatch, tmp_path
    ):
        first = self._query_output(capsys, monkeypatch, tmp_path, seed=11)
        replay = self._query_output(capsys, monkeypatch, tmp_path, seed=11)
        other = self._query_output(capsys, monkeypatch, tmp_path, seed=12)
        assert first == replay
        assert first != other

    def test_query_speedppr_one_shot_is_index_free(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert main(["query", "dblp-s", "--method", "speedppr"]) == 0
        out = capsys.readouterr().out
        # a one-shot process must not pay for the m-walk index
        assert out.startswith("SpeedPPR on")
        assert main(["query", "dblp-s", "--method", "speedppr-index"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SpeedPPR-Index on")

    def test_list_includes_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "methods:" in out
        assert "powerpush" in out
        assert "aliases" in out

    def test_run_t1_to_file(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "dblp-s")
        monkeypatch.setenv("REPRO_BENCH_SOURCES", "1")
        out_file = tmp_path / "report.txt"
        assert main(["run", "T1", "--out", str(out_file)]) == 0
        assert "dblp-s" in out_file.read_text()


class TestServingCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "dblp-s"])
        assert args.window == 0.002
        assert args.cache_capacity == 4096
        assert args.cache_ttl is None

    def test_loadtest_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.method == "powerpush"
        assert args.arrival == "closed"
        assert args.read_fraction == 1.0

    def test_loadtest_writes_metrics_json(self, capsys, tmp_path):
        out_file = tmp_path / "bench" / "serving.json"
        code = main(
            [
                "loadtest",
                "--scale", "9",
                "--edges", "3000",
                "--requests", "60",
                "--sources", "10",
                "--concurrency", "2",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "cache hit rate" in out
        import json

        payload = json.loads(out_file.read_text())
        assert payload["served"]["queries"] == 60
        assert payload["identical"] is True

    def test_loadtest_soak_mode(self, capsys):
        code = main(
            [
                "loadtest",
                "--scale", "9",
                "--edges", "3000",
                "--requests", "40",
                "--sources", "8",
                "--read-fraction", "0.8",
                "--concurrency", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "updates" in out
        assert "n/a" in out  # byte-compare is off under write traffic

    def test_serve_pipe_session(self, capsys, monkeypatch, tmp_path):
        import io

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "1 powerpush l1_threshold=1e-7\n"
                "1 powerpush l1_threshold=1e-7\n"
                "stats\n"
                "bogus-line\n"
                "quit\n"
            ),
        )
        assert main(["serve", "dblp-s", "--window", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "serving dblp-s" in out
        assert out.count("PowerPush source=1") == 2
        assert "cache" in out and "hit_rate" in out
        assert "error:" in out  # the bogus line is reported, not fatal

    def test_serve_rejects_unparseable_request_tokens(
        self, capsys, monkeypatch, tmp_path
    ):
        import io

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        # '1e-7' is neither the method nor key=value: refuse instead of
        # silently answering with default parameters.
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("1 powerpush 1e-7\nquit\n")
        )
        assert main(["serve", "dblp-s"]) == 0
        out = capsys.readouterr().out
        assert "unparseable request token" in out
        assert "PowerPush" not in out

    def test_serve_applies_updates(self, capsys, monkeypatch, tmp_path):
        import io

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("1 powerpush\n+ 1 2\n1 powerpush\nstats\n"),
        )
        assert main(["serve", "dblp-s"]) == 0
        out = capsys.readouterr().out
        # the update either applies (version bump) or is reported as a
        # duplicate edge — both prove the writer path is wired
        assert "version 1" in out or "error:" in out
