"""Unit tests for the graph builders."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edge_arrays,
    from_edges,
    paper_example_graph,
    star_graph,
)


class TestFromEdges:
    def test_simple(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_empty_input(self):
        graph = from_edges([])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_empty_with_num_nodes(self):
        graph = from_edges([], num_nodes=7)
        assert graph.num_nodes == 7
        assert graph.num_edges == 0

    def test_dedup_removes_parallel_edges(self):
        graph = from_edges([(0, 1), (0, 1), (0, 1), (1, 0)])
        assert graph.num_edges == 2

    def test_dedup_disabled_keeps_parallel_edges(self):
        graph = from_edges([(0, 1), (0, 1), (1, 0)], dedup=False)
        assert graph.num_edges == 3

    def test_self_loops_dropped_by_default(self):
        graph = from_edges([(0, 0), (0, 1), (1, 0)])
        assert graph.num_edges == 2
        assert not graph.has_edge(0, 0)

    def test_self_loops_kept_on_request(self):
        graph = from_edges([(0, 0), (0, 1), (1, 0)], drop_self_loops=False)
        assert graph.num_edges == 3
        assert graph.has_edge(0, 0)

    def test_num_nodes_expands_graph(self):
        graph = from_edges([(0, 1), (1, 0)], num_nodes=10)
        assert graph.num_nodes == 10
        assert graph.out_degree[9] == 0

    def test_rejects_endpoint_beyond_num_nodes(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 5)], num_nodes=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            from_edges([(-1, 0)])

    def test_rejects_malformed_tuples(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 1, 2)])  # type: ignore[list-item]

    def test_adjacency_lists_sorted(self):
        graph = from_edges([(0, 3), (0, 1), (0, 2)])
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]


class TestFromEdgeArrays:
    def test_matches_from_edges(self):
        edges = [(0, 2), (2, 1), (1, 0), (0, 1)]
        a = from_edges(edges)
        b = from_edge_arrays(
            np.array([e[0] for e in edges]),
            np.array([e[1] for e in edges]),
        )
        assert a == b

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_edge_arrays(np.array([0, 1]), np.array([1]))


class TestFromAdjacency:
    def test_basic(self):
        graph = from_adjacency({0: [1, 2], 1: [0], 2: []})
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.out_neighbors(0).tolist() == [1, 2]

    def test_isolated_trailing_node(self):
        graph = from_adjacency({0: [1], 1: [], 5: []})
        assert graph.num_nodes == 6


class TestCanonicalGraphs:
    def test_empty_graph(self):
        graph = empty_graph(4)
        assert graph.num_nodes == 4
        assert graph.num_edges == 0
        assert graph.dead_ends.tolist() == [0, 1, 2, 3]

    def test_complete_graph(self):
        graph = complete_graph(4)
        assert graph.num_nodes == 4
        assert graph.num_edges == 12
        assert not graph.has_edge(1, 1)

    def test_complete_graph_degenerate(self):
        assert complete_graph(1).num_edges == 0
        assert complete_graph(0).num_nodes == 0

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert graph.has_edge(4, 0)
        assert graph.out_degree.tolist() == [1] * 5

    def test_cycle_graph_single_node(self):
        graph = cycle_graph(1)
        # single node with a self-loop retained (cycle onto itself)
        assert graph.num_nodes == 1
        assert graph.num_edges == 1

    def test_star_bidirectional(self):
        graph = star_graph(3)
        assert graph.num_nodes == 4
        assert graph.num_edges == 6
        assert not graph.has_dead_ends

    def test_star_out_only_has_dead_ends(self):
        graph = star_graph(3, bidirectional=False)
        assert graph.num_edges == 3
        assert graph.dead_ends.tolist() == [1, 2, 3]


class TestPaperExampleGraph:
    def test_shape(self):
        graph = paper_example_graph()
        assert graph.num_nodes == 5
        assert graph.num_edges == 13

    def test_edges_match_figure1(self):
        graph = paper_example_graph()
        expected = {
            0: [1, 2],
            1: [0, 2, 3, 4],
            2: [1, 3],
            3: [0, 1, 2],
            4: [1, 2],
        }
        for node, neighbors in expected.items():
            assert graph.out_neighbors(node).tolist() == neighbors
