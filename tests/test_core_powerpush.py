"""Unit tests for PowerPush (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.powerpush import PowerPushConfig, power_push
from repro.errors import ParameterError
from repro.graph.build import cycle_graph, empty_graph, from_edges
from repro.instrumentation.tracing import ConvergenceTrace
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["faithful", "vectorized"])
    def test_error_bound_met(self, paper_graph, mode):
        truth = exact_ppr_dense(paper_graph, 0)
        result = power_push(
            paper_graph, 0, l1_threshold=1e-9, mode=mode
        )
        assert l1_error(result.estimate, truth) <= 1e-9

    @pytest.mark.parametrize("mode", ["faithful", "vectorized"])
    def test_r_sum_below_lambda(self, paper_graph, mode):
        result = power_push(
            paper_graph, 0, l1_threshold=1e-7, mode=mode
        )
        assert result.r_sum <= 1e-7

    def test_modes_agree(self, medium_graph):
        faithful = power_push(
            medium_graph, 9, l1_threshold=1e-7, mode="faithful"
        )
        vectorized = power_push(
            medium_graph, 9, l1_threshold=1e-7, mode="vectorized"
        )
        assert (
            np.abs(faithful.estimate - vectorized.estimate).sum() <= 2e-7
        )

    def test_all_sources_on_small_graph(self, paper_graph):
        for source in range(5):
            truth = exact_ppr_dense(paper_graph, source)
            result = power_push(paper_graph, source, l1_threshold=1e-10)
            assert l1_error(result.estimate, truth) <= 1e-10

    def test_dead_ends_redirect(self, dead_end_graph):
        truth = exact_ppr_dense(dead_end_graph, 0)
        result = power_push(dead_end_graph, 0, l1_threshold=1e-10)
        assert l1_error(result.estimate, truth) <= 1e-10

    def test_medium_graph_matches_ground_truth(self, medium_graph):
        from repro.metrics.ground_truth import ground_truth_ppr

        truth = ground_truth_ppr(medium_graph, 0, l1_threshold=1e-13)
        result = power_push(medium_graph, 0, l1_threshold=1e-8)
        assert l1_error(result.estimate, np.asarray(truth)) <= 1e-8

    def test_empty_graph(self):
        graph = empty_graph(3)
        result = power_push(graph, 1, l1_threshold=1e-8)
        np.testing.assert_allclose(result.estimate, [0, 1, 0])


class TestConfig:
    def test_rejects_bad_epochs(self):
        with pytest.raises(ParameterError):
            PowerPushConfig(epoch_num=0)

    def test_rejects_negative_scan_fraction(self):
        with pytest.raises(ParameterError):
            PowerPushConfig(scan_threshold_fraction=-0.5)

    def test_scan_threshold_scales_with_n(self):
        config = PowerPushConfig(scan_threshold_fraction=0.25)
        assert config.scan_threshold(400) == 100.0

    @pytest.mark.parametrize(
        "epoch_num,scan_fraction",
        [(1, 0.25), (8, 0.0), (8, float("inf")), (4, 0.5)],
    )
    def test_all_config_corners_converge(
        self, paper_graph, epoch_num, scan_fraction
    ):
        truth = exact_ppr_dense(paper_graph, 0)
        config = PowerPushConfig(
            epoch_num=epoch_num, scan_threshold_fraction=scan_fraction
        )
        result = power_push(
            paper_graph, 0, l1_threshold=1e-8, config=config
        )
        assert l1_error(result.estimate, truth) <= 1e-8

    def test_unknown_mode_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            power_push(paper_graph, 0, mode="quantum")  # type: ignore[arg-type]


class TestEfficiencyProperties:
    def test_fewer_updates_than_powitr(self, medium_graph):
        from repro.core.power_iteration import power_iteration

        pp = power_push(medium_graph, 4, l1_threshold=1e-8)
        pi = power_iteration(medium_graph, 4, l1_threshold=1e-8)
        assert (
            pp.counters.residue_updates <= pi.counters.residue_updates
        )

    def test_epochs_counter_recorded(self, medium_graph):
        result = power_push(medium_graph, 4, l1_threshold=1e-8)
        assert result.counters.extras.get("epochs", 0) >= 1

    def test_faithful_epochs_reduce_updates(self, medium_graph):
        # The Section-5 dynamic-threshold claim, on the asynchronous
        # scalar scan where accumulate-then-push pays off: 8 epochs
        # need substantially fewer residue updates than 1.
        with_epochs = power_push(
            medium_graph,
            0,
            l1_threshold=1e-8,
            mode="faithful",
            config=PowerPushConfig(epoch_num=8),
        )
        without_epochs = power_push(
            medium_graph,
            0,
            l1_threshold=1e-8,
            mode="faithful",
            config=PowerPushConfig(epoch_num=1),
        )
        assert (
            with_epochs.counters.residue_updates
            < 0.8 * without_epochs.counters.residue_updates
        )

    def test_trace_monotone_nonincreasing(self, medium_graph):
        trace = ConvergenceTrace(stride=0)
        power_push(medium_graph, 4, l1_threshold=1e-8, trace=trace)
        _, errors = trace.series_vs_time()
        assert errors[-1] <= 1e-8
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_queue_phase_only_for_mild_threshold(self, paper_graph):
        # With a mild threshold the queue phase alone finishes the job.
        result = power_push(paper_graph, 0, l1_threshold=0.5)
        assert result.r_sum <= 0.5


class TestResultShape:
    def test_method_name(self, paper_graph):
        assert power_push(paper_graph, 0).method == "PowerPush"

    def test_top_k(self, paper_graph):
        result = power_push(paper_graph, 0, l1_threshold=1e-10)
        top = result.top_k(2)
        assert len(top) == 2
        # The source holds the largest PPR on this graph.
        assert top[0][0] == 0
        assert top[0][1] > top[1][1]
