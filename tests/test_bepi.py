"""Unit tests for the BePI comparator (SlashBurn + block elimination)."""

import numpy as np
import pytest

from repro.bepi.blockelim import build_bepi_index
from repro.bepi.slashburn import slashburn
from repro.bepi.solver import bepi_query
from repro.errors import IndexBuildError, ParameterError
from repro.graph.build import cycle_graph, from_edges, star_graph
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense, ground_truth_ppr


class TestSlashBurn:
    def test_order_is_permutation(self, medium_graph):
        result = slashburn(medium_graph)
        assert sorted(result.order.tolist()) == list(
            range(medium_graph.num_nodes)
        )

    def test_inverse_order(self, medium_graph):
        result = slashburn(medium_graph)
        inverse = result.inverse_order()
        np.testing.assert_array_equal(
            result.order[inverse], np.arange(medium_graph.num_nodes)
        )

    def test_blocks_partition_spoke_region(self, medium_graph):
        result = slashburn(medium_graph)
        cursor = 0
        for start, size in result.spoke_blocks:
            assert start == cursor
            assert size > 0
            cursor += size
        assert cursor == result.num_spokes

    def test_hub_plus_spokes_is_n(self, medium_graph):
        result = slashburn(medium_graph)
        assert (
            result.num_spokes + result.num_hubs
            == medium_graph.num_nodes
        )

    def test_star_hub_found(self):
        graph = star_graph(20)
        result = slashburn(graph, wing_width=1)
        # The hub of the star must be among the SlashBurn hubs.
        hub_region = result.order[result.num_spokes :]
        assert 0 in hub_region.tolist()

    def test_block_diagonality(self, medium_graph):
        # No edges between different spoke blocks (in either direction).
        result = slashburn(medium_graph)
        block_of = np.full(medium_graph.num_nodes, -1)
        for block_id, (start, size) in enumerate(result.spoke_blocks):
            members = result.order[start : start + size]
            block_of[members] = block_id
        sources, targets = medium_graph.edge_array()
        for s, t in zip(sources.tolist(), targets.tolist()):
            if block_of[s] >= 0 and block_of[t] >= 0:
                assert block_of[s] == block_of[t], (s, t)

    def test_rejects_bad_wing_width(self, medium_graph):
        with pytest.raises(ParameterError):
            slashburn(medium_graph, wing_width=0)

    def test_rejects_empty_graph(self):
        from repro.graph.build import empty_graph

        with pytest.raises(ParameterError):
            slashburn(empty_graph(0))


class TestBePIIndex:
    def test_build_on_medium_graph(self, medium_graph):
        index = build_bepi_index(medium_graph)
        assert index.num_spokes + index.num_hubs == medium_graph.num_nodes
        assert index.size_bytes > 0
        assert index.construction_seconds >= 0

    def test_rejects_dead_ends(self, dead_end_graph):
        with pytest.raises(IndexBuildError):
            build_bepi_index(dead_end_graph)

    def test_graph_mismatch_detected(self, medium_graph):
        index = build_bepi_index(medium_graph)
        with pytest.raises(IndexBuildError):
            index.check_graph(cycle_graph(5))


class TestBePIQuery:
    def test_matches_dense_solve(self, paper_graph):
        index = build_bepi_index(paper_graph, wing_width=1)
        truth = exact_ppr_dense(paper_graph, 0)
        result = bepi_query(paper_graph, index, 0, delta=1e-12)
        assert l1_error(result.estimate, truth) <= 1e-8

    def test_all_sources(self, paper_graph):
        index = build_bepi_index(paper_graph, wing_width=1)
        for source in range(5):
            truth = exact_ppr_dense(paper_graph, source)
            result = bepi_query(paper_graph, index, source, delta=1e-12)
            assert l1_error(result.estimate, truth) <= 1e-8

    def test_medium_graph_accuracy(self, medium_graph):
        index = build_bepi_index(medium_graph)
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 11, l1_threshold=1e-13)
        )
        result = bepi_query(medium_graph, index, 11, delta=1e-10)
        assert l1_error(result.estimate, truth) <= 1e-6

    def test_smaller_delta_is_more_accurate(self, medium_graph):
        index = build_bepi_index(medium_graph)
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 3, l1_threshold=1e-13)
        )
        loose = bepi_query(medium_graph, index, 3, delta=1e-2)
        tight = bepi_query(medium_graph, index, 3, delta=1e-10)
        assert l1_error(tight.estimate, truth) <= l1_error(
            loose.estimate, truth
        )

    def test_delta_does_not_guarantee_l1(self, medium_graph):
        # The paper's point: BePI's Delta is an l2 step criterion, not
        # an l1-error bound — the actual error can exceed Delta.
        index = build_bepi_index(medium_graph)
        truth = np.asarray(
            ground_truth_ppr(medium_graph, 3, l1_threshold=1e-13)
        )
        result = bepi_query(medium_graph, index, 3, delta=1e-8)
        assert l1_error(result.estimate, truth) > 1e-12  # not exact

    def test_rejects_bad_delta(self, medium_graph):
        index = build_bepi_index(medium_graph)
        with pytest.raises(ParameterError):
            bepi_query(medium_graph, index, 0, delta=0.0)

    def test_method_name(self, paper_graph):
        index = build_bepi_index(paper_graph, wing_width=1)
        assert bepi_query(paper_graph, index, 0).method == "BePI"

    def test_works_on_cycle(self):
        graph = cycle_graph(12)
        index = build_bepi_index(graph, wing_width=2)
        truth = exact_ppr_dense(graph, 5)
        result = bepi_query(graph, index, 5, delta=1e-12)
        assert l1_error(result.estimate, truth) <= 1e-8
