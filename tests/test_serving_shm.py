"""Tests for :mod:`repro.serving.shm` — shared-memory graph images.

The contract: one process exports a graph's CSR arrays into a single
shared-memory segment, any number of processes attach zero-copy views,
and exactly one process — the exporter — unlinks the segment exactly
once.  ``close`` is idempotent everywhere; nothing is left in
``/dev/shm`` after cleanup.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.serving.shm import (
    SEGMENT_PREFIX,
    SharedGraphImage,
    live_segments,
)

PARAMS = {"l1_threshold": 1e-7}


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(11)
    return rmat_digraph(8, 1500, rng=rng, name="shm-base")


def segment_exists(name: str) -> bool:
    return (Path("/dev/shm") / name).exists()


def our_shm_files() -> set[str]:
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return set()
    return {
        p.name for p in shm_dir.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
    }


class TestExportAttach:
    def test_round_trip_preserves_graph_and_answers(self, base):
        with SharedGraphImage.export_graph(base) as image:
            assert image.owner
            attached = SharedGraphImage.attach(image.handle)
            try:
                assert not attached.owner
                g = attached.graph()
                assert g.num_nodes == base.num_nodes
                assert g.num_edges == base.num_edges

                ref = PPREngine(base, alpha=0.2, seed=7)
                shm_engine = PPREngine(g, alpha=0.2, seed=7)
                for source in (0, 3, 17, 101):
                    a = ref.query(source, "powerpush", **PARAMS)
                    b = shm_engine.query(source, "powerpush", **PARAMS)
                    assert a.estimate.tobytes() == b.estimate.tobytes()
            finally:
                attached.close()

    def test_engine_from_shared_graph_handle(self, base):
        with SharedGraphImage.export_graph(base) as image:
            engine = PPREngine.from_shared_graph(
                image.handle, alpha=0.2, seed=7
            )
            try:
                ref = PPREngine(base, alpha=0.2, seed=7)
                a = ref.query(5, "powerpush", **PARAMS)
                b = engine.query(5, "powerpush", **PARAMS)
                assert a.estimate.tobytes() == b.estimate.tobytes()
                assert engine.shared_image is not None
            finally:
                engine.shared_image.close()

    def test_handle_is_picklable(self, base):
        import pickle

        with SharedGraphImage.export_graph(base) as image:
            clone = pickle.loads(pickle.dumps(image.handle))
            assert clone.segment == image.handle.segment
            assert clone.num_nodes == base.num_nodes


class TestOwnershipAndTeardown:
    def test_unlink_owner_only_and_exactly_once(self, base):
        image = SharedGraphImage.export_graph(base)
        name = image.segment_name
        attached = SharedGraphImage.attach(image.handle)

        with pytest.raises(ParameterError, match="export"):
            attached.unlink()
        attached.close()
        assert segment_exists(name), "non-owner close must not unlink"

        image.close()
        image.unlink()
        assert not segment_exists(name)
        image.unlink()  # second unlink: silent no-op, no FileNotFoundError

    def test_forked_child_pid_guard_refuses_unlink(self, base, monkeypatch):
        image = SharedGraphImage.export_graph(base)
        name = image.segment_name
        # Simulate the object arriving in a forked child: same instance,
        # different pid.  unlink must silently refuse.
        monkeypatch.setattr(image, "_owner_pid", os.getpid() + 1)
        image.close()
        image.unlink()
        assert segment_exists(name), "a forked child unlinked the parent's segment"
        monkeypatch.setattr(image, "_owner_pid", os.getpid())
        image.cleanup()
        assert not segment_exists(name)

    def test_close_idempotent_and_invalidates_views(self, base):
        image = SharedGraphImage.export_graph(base)
        assert not image.closed
        image.close()
        image.close()
        assert image.closed
        with pytest.raises(ParameterError):
            image.graph()
        image.cleanup()
        image.cleanup()  # cleanup after cleanup is also a no-op

    def test_no_segments_survive_cleanup(self, base):
        before = our_shm_files()
        image = SharedGraphImage.export_graph(base)
        assert image.segment_name in our_shm_files()
        assert image.segment_name in live_segments()
        image.cleanup()
        assert image.segment_name not in live_segments()
        assert our_shm_files() == before

    def test_context_manager_cleans_up(self, base):
        with SharedGraphImage.export_graph(base) as image:
            name = image.segment_name
            assert segment_exists(name)
        assert not segment_exists(name)
        assert image.closed
