"""Unit tests for the Monte-Carlo baseline and the Chernoff budget."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.metrics.errors import max_relative_error
from repro.metrics.ground_truth import exact_ppr_dense
from repro.montecarlo.chernoff import (
    chernoff_walk_count,
    default_failure_probability,
    default_mu,
)
from repro.montecarlo.mc import monte_carlo_ppr


class TestChernoff:
    def test_matches_equation_12(self):
        # W = 2 (2 eps / 3 + 2) ln(1/p) / (eps^2 mu)
        eps, mu, p = 0.3, 0.01, 0.001
        expected = 2 * (2 * eps / 3 + 2) * math.log(1 / p) / (eps**2 * mu)
        assert chernoff_walk_count(eps, mu, p_fail=p) == math.ceil(expected)

    def test_monotone_in_epsilon(self):
        counts = [
            chernoff_walk_count(e, 0.01, p_fail=0.01)
            for e in (0.5, 0.3, 0.1)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_monotone_in_mu(self):
        loose = chernoff_walk_count(0.5, 0.1, p_fail=0.01)
        tight = chernoff_walk_count(0.5, 0.001, p_fail=0.01)
        assert tight > loose

    def test_defaults(self):
        assert default_mu(100) == pytest.approx(0.01)
        assert default_failure_probability(100) == pytest.approx(0.01)

    @pytest.mark.parametrize("bad_eps", [0.0, -1.0])
    def test_rejects_bad_epsilon(self, bad_eps):
        with pytest.raises(ParameterError):
            chernoff_walk_count(bad_eps, 0.1, p_fail=0.1)

    @pytest.mark.parametrize("bad_mu", [0.0, 1.5])
    def test_rejects_bad_mu(self, bad_mu):
        with pytest.raises(ParameterError):
            chernoff_walk_count(0.5, bad_mu, p_fail=0.1)

    @pytest.mark.parametrize("bad_p", [0.0, 1.0])
    def test_rejects_bad_p_fail(self, bad_p):
        with pytest.raises(ParameterError):
            chernoff_walk_count(0.5, 0.1, p_fail=bad_p)


class TestMonteCarlo:
    def test_estimate_is_distribution(self, paper_graph, rng):
        result = monte_carlo_ppr(
            paper_graph, 0, num_walks=5000, rng=rng
        )
        assert result.estimate.sum() == pytest.approx(1.0)
        assert np.all(result.estimate >= 0)

    def test_meets_relative_error_contract(self, paper_graph, rng):
        # Full Chernoff budget at eps = 0.5, mu = 1/5.
        truth = exact_ppr_dense(paper_graph, 0)
        result = monte_carlo_ppr(paper_graph, 0, epsilon=0.5, rng=rng)
        assert (
            max_relative_error(result.estimate, truth, mu=1.0 / 5)
            <= 0.5
        )

    def test_unbiasedness(self, paper_graph):
        # Mean over many independent runs converges to the truth.
        truth = exact_ppr_dense(paper_graph, 0)
        total = np.zeros(5)
        runs = 40
        for seed in range(runs):
            result = monte_carlo_ppr(
                paper_graph,
                0,
                num_walks=500,
                rng=np.random.default_rng(seed),
            )
            total += result.estimate
        np.testing.assert_allclose(total / runs, truth, atol=0.015)

    def test_counter_reports_walks(self, paper_graph, rng):
        result = monte_carlo_ppr(
            paper_graph, 0, num_walks=123, rng=rng
        )
        assert result.counters.random_walks == 123
        assert result.counters.walk_steps > 0

    def test_no_residue(self, paper_graph, rng):
        result = monte_carlo_ppr(paper_graph, 0, num_walks=10, rng=rng)
        assert result.residue is None
        assert math.isnan(result.r_sum)

    def test_rejects_bad_num_walks(self, paper_graph, rng):
        with pytest.raises(ParameterError):
            monte_carlo_ppr(paper_graph, 0, num_walks=0, rng=rng)

    def test_method_name(self, paper_graph, rng):
        result = monte_carlo_ppr(paper_graph, 0, num_walks=10, rng=rng)
        assert result.method == "MonteCarlo"
