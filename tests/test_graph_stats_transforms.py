"""Unit tests for graph statistics and structural transforms."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph.build import complete_graph, from_edges, star_graph
from repro.graph.stats import compute_stats, format_si, power_law_exponent_mle
from repro.graph.transforms import apply_dead_end_rule, symmetrize


class TestStats:
    def test_basic_fields(self, paper_graph):
        stats = compute_stats(paper_graph)
        assert stats.num_nodes == 5
        assert stats.num_edges == 13
        assert stats.graph_type == "directed"
        assert stats.max_out_degree == 4
        assert stats.max_in_degree == 4
        assert stats.dead_ends == 0

    def test_table1_row_formatting(self, paper_graph):
        row = compute_stats(paper_graph).table1_row()
        assert row[0] == "paper-example"
        assert row[1] == "5"
        assert row[4] == "directed"

    def test_undirected_flag_propagates(self):
        graph = symmetrize(from_edges([(0, 1)]))
        assert compute_stats(graph).graph_type == "undirected"

    def test_gini_zero_for_regular_graph(self):
        stats = compute_stats(complete_graph(6))
        assert stats.degree_gini == pytest.approx(0.0, abs=1e-12)

    def test_gini_positive_for_star(self):
        stats = compute_stats(star_graph(10))
        assert stats.degree_gini > 0.3


class TestPowerLawMLE:
    def test_nan_on_tiny_samples(self):
        assert np.isnan(power_law_exponent_mle(np.array([2, 3, 4])))

    def test_recovers_exponent_roughly(self, rng):
        # Sample from a Pareto(alpha=2.5) and check the MLE is close.
        u = rng.random(20000)
        degrees = np.floor((1.0 - u) ** (-1.0 / 1.5) * 2).astype(int)
        alpha = power_law_exponent_mle(degrees, d_min=2)
        assert 2.2 < alpha < 2.8

    def test_format_si(self):
        assert format_si(317_000) == "317K"
        assert format_si(2_100_000) == "2.10M"
        assert format_si(1_470_000_000) == "1.47B"
        assert format_si(999) == "999"


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        graph = symmetrize(from_edges([(0, 1), (1, 2)]))
        for u, v in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            assert graph.has_edge(u, v)

    def test_idempotent_on_edge_set(self):
        once = symmetrize(from_edges([(0, 1), (2, 1)]))
        twice = symmetrize(once)
        assert once.num_edges == twice.num_edges


class TestDeadEndRules:
    def test_redirect_is_noop(self, dead_end_graph):
        assert (
            apply_dead_end_rule(dead_end_graph, "redirect-to-source")
            is dead_end_graph
        )

    def test_self_loop_fixes_dead_ends(self, dead_end_graph):
        fixed = apply_dead_end_rule(dead_end_graph, "self-loop")
        assert not fixed.has_dead_ends
        for leaf in (1, 2, 3, 4):
            assert fixed.has_edge(leaf, leaf)

    def test_uniform_teleport_fixes_dead_ends(self, dead_end_graph):
        fixed = apply_dead_end_rule(dead_end_graph, "uniform-teleport")
        assert not fixed.has_dead_ends
        # Each former dead end now points at every node except itself
        # (self-loops are kept here), i.e. out-degree n or n-1.
        assert int(fixed.out_degree[1]) >= dead_end_graph.num_nodes - 1

    def test_noop_when_no_dead_ends(self, paper_graph):
        assert apply_dead_end_rule(paper_graph, "self-loop") is paper_graph

    def test_unknown_rule_rejected(self, dead_end_graph):
        with pytest.raises(ParameterError):
            apply_dead_end_rule(dead_end_graph, "nonsense")  # type: ignore[arg-type]
