"""Unit tests for graph statistics and structural transforms."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph.build import complete_graph, from_edges, star_graph
from repro.graph.stats import compute_stats, format_si, power_law_exponent_mle
from repro.graph.transforms import (
    apply_dead_end_rule,
    reorder_for_locality,
    symmetrize,
)


class TestStats:
    def test_basic_fields(self, paper_graph):
        stats = compute_stats(paper_graph)
        assert stats.num_nodes == 5
        assert stats.num_edges == 13
        assert stats.graph_type == "directed"
        assert stats.max_out_degree == 4
        assert stats.max_in_degree == 4
        assert stats.dead_ends == 0

    def test_table1_row_formatting(self, paper_graph):
        row = compute_stats(paper_graph).table1_row()
        assert row[0] == "paper-example"
        assert row[1] == "5"
        assert row[4] == "directed"

    def test_undirected_flag_propagates(self):
        graph = symmetrize(from_edges([(0, 1)]))
        assert compute_stats(graph).graph_type == "undirected"

    def test_gini_zero_for_regular_graph(self):
        stats = compute_stats(complete_graph(6))
        assert stats.degree_gini == pytest.approx(0.0, abs=1e-12)

    def test_gini_positive_for_star(self):
        stats = compute_stats(star_graph(10))
        assert stats.degree_gini > 0.3


class TestPowerLawMLE:
    def test_nan_on_tiny_samples(self):
        assert np.isnan(power_law_exponent_mle(np.array([2, 3, 4])))

    def test_recovers_exponent_roughly(self, rng):
        # Sample from a Pareto(alpha=2.5) and check the MLE is close.
        u = rng.random(20000)
        degrees = np.floor((1.0 - u) ** (-1.0 / 1.5) * 2).astype(int)
        alpha = power_law_exponent_mle(degrees, d_min=2)
        assert 2.2 < alpha < 2.8

    def test_format_si(self):
        assert format_si(317_000) == "317K"
        assert format_si(2_100_000) == "2.10M"
        assert format_si(1_470_000_000) == "1.47B"
        assert format_si(999) == "999"


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        graph = symmetrize(from_edges([(0, 1), (1, 2)]))
        for u, v in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            assert graph.has_edge(u, v)

    def test_idempotent_on_edge_set(self):
        once = symmetrize(from_edges([(0, 1), (2, 1)]))
        twice = symmetrize(once)
        assert once.num_edges == twice.num_edges


class TestDeadEndRules:
    def test_redirect_is_noop(self, dead_end_graph):
        assert (
            apply_dead_end_rule(dead_end_graph, "redirect-to-source")
            is dead_end_graph
        )

    def test_self_loop_fixes_dead_ends(self, dead_end_graph):
        fixed = apply_dead_end_rule(dead_end_graph, "self-loop")
        assert not fixed.has_dead_ends
        for leaf in (1, 2, 3, 4):
            assert fixed.has_edge(leaf, leaf)

    def test_uniform_teleport_fixes_dead_ends(self, dead_end_graph):
        fixed = apply_dead_end_rule(dead_end_graph, "uniform-teleport")
        assert not fixed.has_dead_ends
        # Each former dead end now points at every node except itself
        # (self-loops are kept here), i.e. out-degree n or n-1.
        assert int(fixed.out_degree[1]) >= dead_end_graph.num_nodes - 1

    def test_noop_when_no_dead_ends(self, paper_graph):
        assert apply_dead_end_rule(paper_graph, "self-loop") is paper_graph

    def test_unknown_rule_rejected(self, dead_end_graph):
        with pytest.raises(ParameterError):
            apply_dead_end_rule(dead_end_graph, "nonsense")  # type: ignore[arg-type]


class TestReorderForLocality:
    def _graph(self, seed: int = 3):
        from repro.generators.rmat import rmat_digraph

        return rmat_digraph(
            7, 800, rng=np.random.default_rng(seed), name="reorder-t"
        )

    @pytest.mark.parametrize("strategy", ["degree", "slashburn"])
    def test_produces_isomorphic_relabelling(self, strategy):
        graph = self._graph()
        result = reorder_for_locality(graph, strategy=strategy)
        assert result.strategy == strategy
        n = graph.num_nodes
        # order/inverse are mutually inverse permutations of 0..n-1
        np.testing.assert_array_equal(np.sort(result.order), np.arange(n))
        np.testing.assert_array_equal(
            result.order[result.inverse], np.arange(n)
        )
        assert result.graph.num_nodes == n
        assert result.graph.num_edges == graph.num_edges
        # Degrees travel with the node through the relabelling.
        np.testing.assert_array_equal(
            result.graph.out_degree[result.inverse], graph.out_degree
        )
        # Spot-check edge preservation on real edges.
        sources, targets = graph.edge_array()
        for position in range(0, sources.shape[0], 97):
            u, v = int(sources[position]), int(targets[position])
            assert result.graph.has_edge(
                result.to_internal(u), result.to_internal(v)
            )

    def test_degree_strategy_puts_hubs_first(self):
        graph = self._graph()
        result = reorder_for_locality(graph, strategy="degree")
        total = graph.out_degree + graph.in_degree
        reordered_totals = total[result.order]
        assert np.all(np.diff(reordered_totals) <= 0)  # descending

    def test_restore_vector_round_trips(self):
        graph = self._graph()
        result = reorder_for_locality(graph, strategy="degree")
        external = np.arange(graph.num_nodes, dtype=np.float64) * 1.5
        internal = external[result.order]  # internal[new] = ext[order[new]]
        np.testing.assert_array_equal(
            result.restore_vector(internal), external
        )
        # Also along the last axis of a block.
        block = np.stack([internal, internal * 2.0])
        np.testing.assert_array_equal(
            result.restore_vector(block)[1], external * 2.0
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            reorder_for_locality(self._graph(), strategy="random")  # type: ignore[arg-type]

    def test_preserves_self_loops_and_multiplicity(self):
        graph = from_edges(
            [(0, 1), (0, 1), (1, 1), (1, 0), (2, 0)],
            dedup=False,
            drop_self_loops=False,
        )
        result = reorder_for_locality(graph, strategy="degree")
        assert result.graph.num_edges == graph.num_edges
        loop = result.to_internal(1)
        assert result.graph.has_edge(loop, loop)


class TestEngineReorder:
    """PPREngine(reorder=...) serves original ids over a reordered CSR."""

    def _engines(self, strategy):
        from repro.api import PPREngine
        from repro.generators.rmat import rmat_digraph

        graph = rmat_digraph(7, 900, rng=np.random.default_rng(11))
        return graph, PPREngine(graph, seed=5), PPREngine(
            graph, seed=5, reorder=strategy
        )

    @pytest.mark.parametrize("strategy", ["degree", "slashburn"])
    def test_query_matches_plain_engine(self, strategy):
        _, plain, reordered = self._engines(strategy)
        for source in (0, 17, 63):
            a = plain.query(source, "powerpush", l1_threshold=1e-8)
            b = reordered.query(source, "powerpush", l1_threshold=1e-8)
            assert b.source == source
            assert np.abs(a.estimate - b.estimate).sum() < 1e-12
            assert np.abs(a.residue - b.residue).sum() < 1e-12

    def test_block_batch_matches_plain_engine(self):
        _, plain, reordered = self._engines("degree")
        a = plain.batch_query([2, 9, 33, 41], "powerpush")
        b = reordered.batch_query([2, 9, 33, 41], "powerpush")
        assert reordered.block_batches == 1
        for x, y in zip(a, b):
            assert x.source == y.source
            assert np.abs(x.estimate - y.estimate).sum() < 1e-12

    def test_top_k_reports_original_ids(self):
        _, plain, reordered = self._engines("degree")
        a = plain.top_k(3, 5)
        b = reordered.top_k(3, 5)
        assert [node for node, _ in a.ranking] == [
            node for node, _ in b.ranking
        ]
        assert a.certified == b.certified

    def test_seeded_montecarlo_batch_mass_conserved(self):
        _, _, reordered = self._engines("degree")
        results = reordered.batch_query(
            [1, 2, 3], "montecarlo", seed=7, num_walks=300
        )
        for result, source in zip(results, (1, 2, 3)):
            assert result.source == source
            assert abs(result.estimate.sum() - 1.0) < 1e-9

    def test_dynamic_graph_rejected(self):
        from repro.api import PPREngine
        from repro.graph.dynamic import DynamicGraph

        dynamic = DynamicGraph(star_graph(4))
        with pytest.raises(ParameterError, match="reorder"):
            PPREngine(dynamic, reorder="degree")

    def test_reordering_property_exposed(self):
        graph, _, reordered = self._engines("degree")
        assert reordered.reordering is not None
        assert reordered.reordering.strategy == "degree"
        assert reordered.graph.num_edges == graph.num_edges
