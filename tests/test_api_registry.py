"""Tests for the solver registry (:mod:`repro.api.registry`)."""

import numpy as np
import pytest

from repro.api import (
    SolverSpec,
    UnknownMethodError,
    canonical_method_name,
    get_solver,
    register_solver,
    resolve_method,
    solve,
    solver_names,
    solver_specs,
)
from repro.api.registry import PARAMS
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import power_push
from repro.errors import ParameterError, ReproError
from repro.graph.build import paper_example_graph

ALL_METHODS = (
    "bepi",
    "fifo-fwdpush",
    "fora",
    "fwdpush-scheduled",
    "montecarlo",
    "powerpush",
    "powitr",
    "resacc",
    "simfwdpush",
    "speedppr",
)


class TestResolution:
    def test_every_expected_method_is_registered(self):
        assert tuple(solver_names()) == ALL_METHODS

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("powerpush", "powerpush"),
            ("Power-Push", "powerpush"),
            ("ALGO3", "powerpush"),
            ("powitr", "powitr"),
            ("power_iteration", "powitr"),
            ("power-iteration", "powitr"),
            ("fwdpush", "fifo-fwdpush"),
            ("FIFO FwdPush", "fifo-fwdpush"),
            ("algo2", "fifo-fwdpush"),
            ("algo1", "fwdpush-scheduled"),
            ("simfwdpush", "simfwdpush"),
            ("speedppr", "speedppr"),
            ("speed_ppr", "speedppr"),
            ("SpeedPPR-Index", "speedppr"),
            ("fora", "fora"),
            ("fora+", "fora"),
            ("FORA-Index", "fora"),
            ("resacc", "resacc"),
            ("mc", "montecarlo"),
            ("monte-carlo", "montecarlo"),
            ("bepi", "bepi"),
            ("BLOCKELIM", "bepi"),
        ],
    )
    def test_alias_resolution(self, alias, canonical):
        assert canonical_method_name(alias) == canonical

    def test_variant_alias_implies_parameters(self):
        spec, implied = resolve_method("fora+")
        assert spec.name == "fora"
        assert implied == {"use_index": True}
        spec, implied = resolve_method("speedppr-index")
        assert spec.name == "speedppr"
        assert implied == {"use_index": True}
        _, implied = resolve_method("fora")
        assert implied == {}

    def test_unknown_method_lists_valid_names(self):
        with pytest.raises(UnknownMethodError) as excinfo:
            get_solver("pagerank-turbo")
        message = str(excinfo.value)
        assert "pagerank-turbo" in message
        for name in ("powerpush", "fwdpush", "speedppr", "montecarlo"):
            assert name in message

    def test_unknown_method_is_a_repro_error(self):
        with pytest.raises(ReproError):
            get_solver("nope")
        with pytest.raises(KeyError):
            get_solver("nope")


class TestSpecs:
    def test_kinds(self):
        exact = {s.name for s in solver_specs() if s.kind == "exact"}
        approx = {s.name for s in solver_specs() if s.kind == "approx"}
        assert exact == {
            "powerpush",
            "powitr",
            "fifo-fwdpush",
            "fwdpush-scheduled",
            "simfwdpush",
            "bepi",
        }
        assert approx == {"speedppr", "fora", "resacc", "montecarlo"}

    def test_capability_flags(self):
        assert get_solver("bepi").needs_precomputation
        assert get_solver("speedppr").needs_walk_index
        assert get_solver("speedppr").index_by_default
        assert get_solver("speedppr").needs_rng
        assert not get_solver("powerpush").needs_rng
        assert not get_solver("fora").index_by_default

    def test_params_are_subset_of_unified_schema(self):
        for spec in solver_specs():
            for param in spec.params:
                assert param in PARAMS, (spec.name, param)

    def test_spec_rejects_bad_kind_and_bad_params(self):
        with pytest.raises(ParameterError):
            SolverSpec(
                name="x", aliases=(), kind="magic", summary="", params=()
            )
        with pytest.raises(ParameterError):
            SolverSpec(
                name="x",
                aliases=(),
                kind="exact",
                summary="",
                params=("no_such_parameter",),
            )

    def test_spec_requires_a_callable_fn(self):
        with pytest.raises(ParameterError):
            SolverSpec(
                name="x", aliases=(), kind="exact", summary="", params=()
            )

    def test_register_rejects_alias_collision(self):
        clone = SolverSpec(
            name="powerpush-2",
            aliases=("powerpush",),  # collides with the real one
            kind="exact",
            summary="",
            params=(),
            fn=power_push,
        )
        with pytest.raises(ParameterError):
            register_solver(clone)
        assert "powerpush-2" not in solver_names()

    def test_register_rejects_canonical_name_reuse(self):
        impostor = SolverSpec(
            name="powerpush",
            aliases=(),
            kind="exact",
            summary="",
            params=(),
            fn=power_iteration,
        )
        with pytest.raises(ParameterError):
            register_solver(impostor)
        # the real solver is untouched
        assert get_solver("powerpush").fn is power_push

    def test_register_rejects_duplicate_spelling_within_one_spec(self):
        twice = SolverSpec(
            name="brand-new",
            aliases=("brandnew",),  # normalises to the spec name itself
            kind="exact",
            summary="",
            params=(),
            fn=power_push,
        )
        with pytest.raises(ParameterError):
            register_solver(twice)
        assert "brand-new" not in solver_names()


class TestSolve:
    def test_unknown_parameter_rejected_with_accepted_list(self):
        graph = paper_example_graph()
        with pytest.raises(ParameterError) as excinfo:
            solve(graph, 0, method="powerpush", epsilon=0.5)
        assert "epsilon" in str(excinfo.value)
        assert "l1_threshold" in str(excinfo.value)

    def test_solve_matches_direct_call(self):
        graph = paper_example_graph()
        via_registry = solve(graph, 0, method="powitr", l1_threshold=1e-9)
        direct = power_iteration(graph, 0, l1_threshold=1e-9)
        np.testing.assert_array_equal(via_registry.estimate, direct.estimate)
        assert via_registry.method == direct.method == "PowItr"

    def test_registry_seed_matches_engine_seed(self):
        # One derivation everywhere: registry-direct seeded answers are
        # byte-identical to the engine's (and hence the serving layer's).
        from repro.api import PPREngine

        graph = paper_example_graph()
        direct = solve(graph, 2, method="montecarlo", num_walks=300, seed=11)
        via_engine = PPREngine(graph, seed=99).query(
            2, method="montecarlo", num_walks=300, seed=11
        )
        np.testing.assert_array_equal(
            direct.estimate, via_engine.estimate
        )

    def test_seed_makes_stochastic_methods_reproducible(self):
        graph = paper_example_graph()
        first = solve(graph, 0, method="montecarlo", num_walks=500, seed=11)
        second = solve(graph, 0, method="montecarlo", num_walks=500, seed=11)
        other = solve(graph, 0, method="montecarlo", num_walks=500, seed=12)
        np.testing.assert_array_equal(first.estimate, second.estimate)
        assert not np.array_equal(first.estimate, other.estimate)

    def test_params_mapping_and_kwargs_merge(self):
        graph = paper_example_graph()
        spec = get_solver("powitr")
        result = spec.solve(
            graph, 0, params={"l1_threshold": 1e-4}, l1_threshold=1e-9
        )
        # kwargs win over the mapping
        assert result.r_sum <= 1e-9

    def test_scheduled_fwdpush_accepts_l1_threshold(self):
        graph = paper_example_graph()
        result = solve(
            graph, 0, method="fwdpush-scheduled", l1_threshold=1e-6,
            scheduler="lifo",
        )
        assert result.method == "FwdPush[lifo]"
        assert result.r_sum <= 1e-6

    def test_scheduled_fwdpush_rejects_both_thresholds(self):
        graph = paper_example_graph()
        with pytest.raises(ParameterError):
            solve(
                graph, 0, method="fwdpush-scheduled",
                l1_threshold=1e-6, r_max=1e-3,
            )

    def test_bepi_via_registry_builds_index_ad_hoc(self):
        graph = paper_example_graph()
        result = solve(graph, 0, method="bepi", delta=1e-10)
        exact = power_iteration(graph, 0, l1_threshold=1e-12)
        assert np.abs(result.estimate - exact.estimate).sum() < 1e-6

    def test_fora_plus_alias_builds_walk_index(self):
        graph = paper_example_graph()
        result = solve(graph, 0, method="fora+", epsilon=0.5, seed=5)
        assert result.method == "FORA-Index"
