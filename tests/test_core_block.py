"""Block (multi-source) kernels and solver vs their per-source twins.

The block layer's contract is strict: every row of a
:func:`~repro.core.powerpush.power_push_block` solve must be
**element-wise identical** (``np.array_equal``, not allclose) to an
independent :func:`~repro.core.powerpush.power_push` run with the same
parameters — that is what lets the engine and the serving scheduler
batch opportunistically without changing a single answer.  The tests
here pin that down directly on the kernels, on the driver across
graphs/policies/thresholds/configs, and property-based on random
graphs via hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    block_frontier_push,
    block_global_sweep,
    block_sweep_active,
    frontier_push,
    global_sweep,
    sweep_active,
)
from repro.core.powerpush import PowerPushConfig, power_push, power_push_block
from repro.core.residues import BlockPushState, PushState
from repro.core.workspace import Workspace
from repro.errors import ConvergenceError, ParameterError
from repro.graph.build import from_edges


def block_rows_equal_states(block, states):
    """Assert every block row equals its single-source state bitwise."""
    for row, state in enumerate(states):
        assert np.array_equal(block.reserve[row], state.reserve), row
        assert np.array_equal(block.residue[row], state.residue), row
        assert block.r_sum[row] == state.r_sum, row


class TestWorkspace:
    def test_buffers_are_reused_and_grow(self):
        ws = Workspace()
        first = ws.buffer("a", 10, np.int64)
        assert first.shape == (10,) and ws.allocations == 1
        again = ws.buffer("a", 6, np.int64)
        assert again.base is first.base and ws.allocations == 1
        grown = ws.buffer("a", 11, np.int64)
        assert grown.shape == (11,) and ws.allocations == 2
        # Geometric growth: the new capacity covers well beyond 11.
        assert ws.buffer("a", 20, np.int64).base is grown.base
        assert ws.reused == ws.requests - ws.allocations

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.buffer("a", 8, np.int64)
        ws.buffer("a", 8, np.float64)
        assert ws.allocations == 2


class TestBlockPushState:
    def test_initial_state(self, paper_graph):
        state = BlockPushState(paper_graph, [0, 3], alpha=0.2)
        assert state.residue.shape == (2, paper_graph.num_nodes)
        assert state.residue[0, 0] == 1.0 and state.residue[1, 3] == 1.0
        assert np.array_equal(state.r_sum, np.ones(2))
        assert state.mass_total(0) == pytest.approx(1.0)

    def test_rejects_bad_inputs(self, paper_graph):
        with pytest.raises(ParameterError):
            BlockPushState(paper_graph, [0], dead_end_policy="nope")
        with pytest.raises(ParameterError):
            BlockPushState(paper_graph, [])
        from repro.errors import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            BlockPushState(paper_graph, [paper_graph.num_nodes])

    def test_row_counters_epochs_only_when_scanned(self, paper_graph):
        state = BlockPushState(paper_graph, [0])
        assert "epochs" not in state.row_counters(0).extras
        state.epochs[0] = 3
        assert state.row_counters(0).extras["epochs"] == 3


class TestBlockKernels:
    def test_block_global_sweep_matches_per_source(self, paper_graph):
        sources = [0, 1, 4]
        block = BlockPushState(paper_graph, sources)
        states = [PushState(paper_graph, s) for s in sources]
        for _ in range(3):
            block_global_sweep(block, np.arange(3), count_all_edges=True)
            for state in states:
                global_sweep(state, count_all_edges=True)
        block_rows_equal_states(block, states)
        for row, state in enumerate(states):
            assert block.row_counters(row).as_dict() == state.counters.as_dict()

    def test_block_global_sweep_row_subset(self, paper_graph):
        block = BlockPushState(paper_graph, [0, 1, 2])
        state = PushState(paper_graph, 1)
        block_global_sweep(block, np.asarray([1]))
        global_sweep(state, count_all_edges=False)
        assert np.array_equal(block.residue[1], state.residue)
        # Untouched rows keep their initial residue.
        assert block.residue[0, 0] == 1.0 and block.residue[2, 2] == 1.0

    def test_block_global_sweep_dead_ends(self, dead_end_graph):
        for policy in ("redirect-to-source", "uniform-teleport"):
            sources = [0, 1]
            block = BlockPushState(
                dead_end_graph, sources, dead_end_policy=policy
            )
            states = [
                PushState(dead_end_graph, s, dead_end_policy=policy)
                for s in sources
            ]
            for _ in range(2):
                block_global_sweep(block, np.arange(2))
                for state in states:
                    global_sweep(state, count_all_edges=False)
            block_rows_equal_states(block, states)

    def test_block_frontier_push_distinct_frontiers(self, paper_graph):
        n = paper_graph.num_nodes
        sources = [0, 2]
        block = BlockPushState(paper_graph, sources)
        states = [PushState(paper_graph, s) for s in sources]
        # Give every node some residue so arbitrary frontiers are live.
        fill = np.linspace(0.01, 0.05, n)
        for row, state in enumerate(states):
            block.residue[row] += fill * (row + 1)
            block.refresh_r_sum(row)
            state.residue += fill * (row + 1)
            state.refresh_r_sum()
        masks = np.zeros((2, n), dtype=bool)
        masks[0, [0, 3]] = True
        masks[1, [1, 3, 4]] = True
        block_frontier_push(block, np.arange(2), masks, workspace=Workspace())
        frontier_push(states[0], np.asarray([0, 3]))
        frontier_push(states[1], np.asarray([1, 3, 4]))
        block_rows_equal_states(block, states)
        for row, state in enumerate(states):
            assert block.row_counters(row).as_dict() == state.counters.as_dict()

    def test_union_gather_does_not_push_inactive_rows(self, paper_graph):
        """A node active only in row 0 must stay untouched in row 1."""
        n = paper_graph.num_nodes
        block = BlockPushState(paper_graph, [0, 1])
        block.residue[:] = 0.1
        block.refresh_r_sum(0), block.refresh_r_sum(1)
        masks = np.zeros((2, n), dtype=bool)
        masks[0, 0] = True
        masks[1, 1] = True
        before = block.residue[1, 0]
        block_frontier_push(block, np.arange(2), masks)
        # Row 1 never pushed node 0: its residue there only grows by
        # whatever node 1's push deposited, never gets zeroed.
        assert block.residue[1, 0] >= before
        assert block.reserve[1, 0] == 0.0

    def test_block_sweep_active_mixed_density(self, medium_graph):
        """Hot rows take the mat-mat path, cold rows the gather path."""
        n = medium_graph.num_nodes
        sources = [0, 1]
        block = BlockPushState(medium_graph, sources)
        states = [PushState(medium_graph, s) for s in sources]
        # Row 0: all mass on the source (narrow frontier).  Row 1:
        # residue spread over every node (wide frontier).
        spread = np.full(n, 1.0 / n)
        block.residue[1] = spread
        block.refresh_r_sum(1)
        states[1].residue[:] = spread
        states[1].refresh_r_sum()
        r_max = 1e-6
        threshold = states[0].threshold_vector(r_max)
        masks = block.active_masks(np.arange(2), threshold)
        counts = block_sweep_active(
            block, np.arange(2), masks, workspace=Workspace()
        )
        pushed = [
            sweep_active(state, r_max, threshold_vec=threshold)
            for state in states
        ]
        assert counts.tolist() == pushed
        assert counts[0] <= 0.25 * n < counts[1]
        block_rows_equal_states(block, states)


GRAPH_CASES = [
    ("paper", None),
    ("dead-star", None),
    ("medium", None),
]


class TestPowerPushBlockEquivalence:
    @pytest.mark.parametrize("policy", ["redirect-to-source", "uniform-teleport"])
    @pytest.mark.parametrize("l1", [1e-4, 1e-8])
    def test_paper_graph(self, paper_graph, policy, l1):
        self._assert_equivalent(
            paper_graph, [0, 1, 2, 3, 4], policy=policy, l1=l1
        )

    @pytest.mark.parametrize("policy", ["redirect-to-source", "uniform-teleport"])
    def test_dead_end_graph(self, dead_end_graph, policy):
        self._assert_equivalent(dead_end_graph, [0, 1, 4], policy=policy)

    def test_medium_graph(self, medium_graph):
        self._assert_equivalent(medium_graph, [0, 7, 77, 299], l1=1e-7)

    @pytest.mark.parametrize(
        "config",
        [
            PowerPushConfig(epoch_num=1),
            PowerPushConfig(epoch_num=3, scan_threshold_fraction=0.5),
            PowerPushConfig(scan_threshold_fraction=0.0),
            PowerPushConfig(scan_threshold_fraction=float("inf")),
        ],
        ids=["one-epoch", "mid", "no-queue", "never-scan"],
    )
    def test_config_variants(self, medium_graph, config):
        self._assert_equivalent(
            medium_graph, [3, 14, 15], l1=1e-6, config=config
        )

    def test_duplicate_sources(self, medium_graph):
        results = power_push_block(medium_graph, [9, 9, 9], l1_threshold=1e-6)
        assert np.array_equal(results[0].estimate, results[1].estimate)
        assert np.array_equal(results[0].estimate, results[2].estimate)

    def test_single_source_block(self, medium_graph):
        self._assert_equivalent(medium_graph, [42], l1=1e-6)

    def test_edgeless_graph(self):
        graph = from_edges([], num_nodes=4)
        self._assert_equivalent(graph, [0, 1, 3])

    def test_empty_sources(self, paper_graph):
        assert power_push_block(paper_graph, []) == []

    def test_workspace_reused_across_solves(self, medium_graph):
        ws = Workspace()
        power_push_block(medium_graph, [0, 1], l1_threshold=1e-6, workspace=ws)
        allocations = ws.allocations
        power_push_block(medium_graph, [0, 1], l1_threshold=1e-6, workspace=ws)
        assert ws.allocations == allocations  # second solve: all reused
        assert ws.reused > 0

    def test_budget_exceeded_raises_like_per_source(self, medium_graph):
        with pytest.raises(ConvergenceError):
            power_push(medium_graph, 0, l1_threshold=1e-8, max_work_factor=1e-3)
        with pytest.raises(ConvergenceError):
            power_push_block(
                medium_graph, [0, 1], l1_threshold=1e-8, max_work_factor=1e-3
            )

    def test_result_metadata(self, medium_graph):
        results = power_push_block(medium_graph, [5, 6], l1_threshold=1e-6)
        for result, source in zip(results, [5, 6]):
            assert result.method == "PowerPush"
            assert result.source == source
            assert result.batch_size == 2
            assert result.r_sum <= 1e-6
            assert result.seconds > 0

    @staticmethod
    def _assert_equivalent(
        graph, sources, *, policy="redirect-to-source", l1=1e-8, config=None
    ):
        block = power_push_block(
            graph,
            sources,
            l1_threshold=l1,
            dead_end_policy=policy,
            config=config,
        )
        for source, row in zip(sources, block):
            single = power_push(
                graph,
                source,
                l1_threshold=l1,
                dead_end_policy=policy,
                config=config,
            )
            assert np.array_equal(single.estimate, row.estimate), source
            assert np.array_equal(single.residue, row.residue), source
            assert (
                single.counters.as_dict() == row.counters.as_dict()
            ), source


# ---------------------------------------------------------------------------
# Property-based equivalence on random graphs
# ---------------------------------------------------------------------------

@st.composite
def random_graph_and_sources(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=24))
    max_edges = min(60, num_nodes * (num_nodes - 1))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
            ),
            min_size=0,
            max_size=max_edges,
        )
    )
    graph = from_edges(edges, num_nodes=num_nodes, name="hypo")
    sources = draw(
        st.lists(
            st.integers(0, num_nodes - 1), min_size=1, max_size=5
        )
    )
    return graph, sources


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    case=random_graph_and_sources(),
    policy=st.sampled_from(["redirect-to-source", "uniform-teleport"]),
    l1=st.sampled_from([1e-3, 1e-5, 1e-8]),
    alpha=st.sampled_from([0.1, 0.2, 0.5]),
)
def test_block_rows_identical_to_independent_solves(case, policy, l1, alpha):
    """power_push_block rows == independent power_push runs, bitwise."""
    graph, sources = case
    block = power_push_block(
        graph,
        sources,
        alpha=alpha,
        l1_threshold=l1,
        dead_end_policy=policy,
    )
    for source, row in zip(sources, block):
        single = power_push(
            graph,
            source,
            alpha=alpha,
            l1_threshold=l1,
            dead_end_policy=policy,
        )
        assert np.array_equal(single.estimate, row.estimate)
        assert np.array_equal(single.residue, row.residue)
        assert single.counters.as_dict() == row.counters.as_dict()
