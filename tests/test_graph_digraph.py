"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError, NodeNotFoundError
from repro.graph.build import from_edges, paper_example_graph
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_basic_counts(self, paper_graph):
        assert paper_graph.num_nodes == 5
        assert paper_graph.num_edges == 13
        assert paper_graph.average_degree == pytest.approx(13 / 5)

    def test_validation_rejects_bad_indptr_start(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(
                np.array([0, 2, 1]),
                np.array([0, 1], dtype=np.int32),
            )

    def test_validation_rejects_mismatched_edge_count(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(np.array([0, 3]), np.array([0], dtype=np.int32))

    def test_validation_rejects_out_of_range_target(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_arrays_are_read_only(self, paper_graph):
        with pytest.raises(ValueError):
            paper_graph.out_indices[0] = 3
        with pytest.raises(ValueError):
            paper_graph.out_indptr[0] = 1


class TestDegrees:
    def test_out_degrees_match_figure1(self, paper_graph):
        # v1..v5 have out-degrees 2, 4, 2, 3, 2 (Figure 1's P rows).
        assert paper_graph.out_degree.tolist() == [2, 4, 2, 3, 2]

    def test_in_degree_counts_incoming(self, paper_graph):
        # Column sums of the Figure 1 adjacency.
        assert paper_graph.in_degree.tolist() == [2, 4, 4, 2, 1]

    def test_degrees_sum_to_m(self, paper_graph):
        assert int(paper_graph.out_degree.sum()) == paper_graph.num_edges
        assert int(paper_graph.in_degree.sum()) == paper_graph.num_edges

    def test_dead_end_detection(self, dead_end_graph):
        assert dead_end_graph.has_dead_ends
        assert dead_end_graph.dead_ends.tolist() == [1, 2, 3, 4]

    def test_no_dead_ends_in_paper_graph(self, paper_graph):
        assert not paper_graph.has_dead_ends


class TestAccess:
    def test_out_neighbors_sorted(self, paper_graph):
        assert paper_graph.out_neighbors(1).tolist() == [0, 2, 3, 4]

    def test_in_neighbors(self, paper_graph):
        assert sorted(paper_graph.in_neighbors(0).tolist()) == [1, 3]

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge(0, 1)
        assert paper_graph.has_edge(0, 2)
        assert not paper_graph.has_edge(0, 3)
        assert not paper_graph.has_edge(2, 0)

    def test_node_bounds_checked(self, paper_graph):
        with pytest.raises(NodeNotFoundError):
            paper_graph.out_neighbors(5)
        with pytest.raises(NodeNotFoundError):
            paper_graph.out_neighbors(-1)
        with pytest.raises(NodeNotFoundError):
            paper_graph.has_edge(0, 99)

    def test_iter_edges_matches_edge_array(self, paper_graph):
        listed = list(paper_graph.iter_edges())
        sources, targets = paper_graph.edge_array()
        assert listed == list(zip(sources.tolist(), targets.tolist()))
        assert len(listed) == paper_graph.num_edges


class TestConversions:
    def test_reverse_swaps_degrees(self, paper_graph):
        reverse = paper_graph.reverse()
        assert reverse.num_edges == paper_graph.num_edges
        assert reverse.out_degree.tolist() == paper_graph.in_degree.tolist()
        assert reverse.in_degree.tolist() == paper_graph.out_degree.tolist()

    def test_reverse_twice_is_identity(self, paper_graph):
        assert paper_graph.reverse().reverse() == paper_graph

    def test_scipy_adjacency(self, paper_graph):
        adj = paper_graph.to_scipy_csr(weighted=False)
        assert adj.shape == (5, 5)
        assert adj.nnz == 13
        assert adj[0, 1] == 1.0

    def test_transition_matrix_rows_are_stochastic(self, paper_graph):
        p = paper_graph.to_scipy_csr(weighted=True)
        row_sums = np.asarray(p.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, np.ones(5))

    def test_transition_matrix_matches_figure1(self, paper_graph):
        p = paper_graph.to_scipy_csr(weighted=True).toarray()
        expected = np.array(
            [
                [0, 1 / 2, 1 / 2, 0, 0],
                [1 / 4, 0, 1 / 4, 1 / 4, 1 / 4],
                [0, 1 / 2, 0, 1 / 2, 0],
                [1 / 3, 1 / 3, 1 / 3, 0, 0],
                [0, 1 / 2, 1 / 2, 0, 0],
            ]
        )
        np.testing.assert_allclose(p, expected)

    def test_transition_transpose_cached(self, paper_graph):
        first = paper_graph.transition_matrix_transpose()
        second = paper_graph.transition_matrix_transpose()
        assert first is second

    def test_dead_end_transition_row_is_zero(self, dead_end_graph):
        p = dead_end_graph.to_scipy_csr(weighted=True).toarray()
        np.testing.assert_allclose(p[1], np.zeros(5))


class TestEquality:
    def test_equal_graphs(self):
        a = from_edges([(0, 1), (1, 0)])
        b = from_edges([(1, 0), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = from_edges([(0, 1), (1, 0)])
        b = from_edges([(0, 1), (1, 0), (0, 2), (2, 0)])
        assert a != b

    def test_eq_other_type(self, paper_graph):
        assert paper_graph != "not a graph"
