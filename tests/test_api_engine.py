"""Tests for the stateful query engine (:mod:`repro.api.engine`)."""

import numpy as np
import pytest

from repro.api import PPREngine, get_solver, per_source_rng, solver_names
from repro.baselines.fora import fora
from repro.baselines.resacc import resacc
from repro.bepi.blockelim import build_bepi_index
from repro.bepi.solver import bepi_query
from repro.core.fifo_fwdpush import fifo_forward_push
from repro.core.fwdpush import forward_push
from repro.core.power_iteration import power_iteration
from repro.core.powerpush import power_push
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.core.speedppr import speed_ppr
from repro.errors import ParameterError, UnknownMethodError
from repro.graph.build import paper_example_graph
from repro.montecarlo.mc import monte_carlo_ppr


@pytest.fixture
def graph():
    return paper_example_graph()


@pytest.fixture
def engine(graph):
    return PPREngine(graph, alpha=0.2, seed=3)


SEED = 17


class TestQueryParity:
    """``engine.query(s, method=m)`` matches the direct function call.

    Stochastic methods get a pinned ``seed`` (engine side) and an
    identically-seeded generator (direct side); index-capable methods
    run index-free so both sides draw the same walk stream.
    """

    def test_powerpush(self, graph, engine):
        mine = engine.query(0, method="powerpush", l1_threshold=1e-8)
        ref = power_push(graph, 0, l1_threshold=1e-8)
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_powitr(self, graph, engine):
        mine = engine.query(0, method="powitr", l1_threshold=1e-8)
        ref = power_iteration(graph, 0, l1_threshold=1e-8)
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_fifo_fwdpush(self, graph, engine):
        mine = engine.query(0, method="fwdpush", l1_threshold=1e-8)
        ref = fifo_forward_push(graph, 0, l1_threshold=1e-8)
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_fwdpush_scheduled(self, graph, engine):
        mine = engine.query(
            0, method="fwdpush-scheduled", r_max=1e-4, scheduler="max-residue"
        )
        ref = forward_push(graph, 0, r_max=1e-4, scheduler="max-residue")
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_simfwdpush(self, graph, engine):
        mine = engine.query(0, method="simfwdpush", l1_threshold=1e-8)
        ref = simultaneous_forward_push(graph, 0, l1_threshold=1e-8)
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_bepi(self, graph, engine):
        mine = engine.query(0, method="bepi", delta=1e-8)
        index = build_bepi_index(graph, alpha=0.2)
        ref = bepi_query(graph, index, 0, delta=1e-8)
        np.testing.assert_allclose(mine.estimate, ref.estimate, atol=1e-12)

    def test_speedppr(self, graph, engine):
        mine = engine.query(
            0, method="speedppr", use_index=False, seed=SEED
        )
        ref = speed_ppr(graph, 0, rng=per_source_rng(SEED, 0))
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_fora(self, graph, engine):
        mine = engine.query(0, method="fora", seed=SEED)
        ref = fora(graph, 0, rng=per_source_rng(SEED, 0))
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_resacc(self, graph, engine):
        mine = engine.query(0, method="resacc", seed=SEED)
        ref = resacc(graph, 0, rng=per_source_rng(SEED, 0))
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_montecarlo(self, graph, engine):
        mine = engine.query(0, method="montecarlo", num_walks=300, seed=SEED)
        ref = monte_carlo_ppr(
            graph, 0, num_walks=300, rng=per_source_rng(SEED, 0)
        )
        np.testing.assert_array_equal(mine.estimate, ref.estimate)

    def test_every_registered_method_is_queryable(self, engine):
        for name in solver_names():
            kind = get_solver(name).kind
            params = (
                {"l1_threshold": 1e-6} if kind == "exact" else {"epsilon": 0.5}
            )
            result = engine.query(1, method=name, **params)
            assert result.source == 1
            assert result.estimate.shape == (engine.graph.num_nodes,)
            assert result.estimate.sum() == pytest.approx(1.0, abs=1e-5)


class TestIndexCaching:
    def test_second_speedppr_query_reuses_walk_index(self, engine):
        engine.query(0, method="speedppr", epsilon=0.5)
        assert engine.index_builds["walk"] == 1
        engine.query(1, method="speedppr", epsilon=0.2)  # different eps too
        assert engine.index_builds["walk"] == 1
        assert engine.stats.queries == 2

    def test_second_bepi_query_reuses_bepi_index(self, engine):
        engine.query(0, method="bepi")
        engine.query(1, method="bepi")
        assert engine.index_builds["bepi"] == 1

    def test_speedppr_served_from_index_by_default(self, engine):
        result = engine.query(0, method="speedppr", epsilon=0.5)
        assert result.method == "SpeedPPR-Index"
        index_free = engine.query(0, method="speedppr", use_index=False)
        assert index_free.method == "SpeedPPR"
        assert engine.index_builds["walk"] == 1

    def test_index_queries_never_take_the_mc_shortcut(self, engine):
        # paper_example_graph has m >= W for this loose contract; the
        # engine-injected rng must not arm speed_ppr's m >= W shortcut
        # and bypass the cached index
        result = engine.query(
            0, method="speedppr", epsilon=0.5, mu=0.05, p_fail=0.01
        )
        assert result.method == "SpeedPPR-Index"
        replay = engine.query(
            0, method="speedppr", epsilon=0.5, mu=0.05, p_fail=0.01
        )
        np.testing.assert_array_equal(result.estimate, replay.estimate)

    def test_fora_index_cache_serves_larger_eps(self, engine):
        engine.query(0, method="fora+", epsilon=0.1)
        assert engine.index_builds["fora"] == 1
        # an index built for eps=0.1 also serves eps=0.5
        result = engine.query(0, method="fora+", epsilon=0.5)
        assert engine.index_builds["fora"] == 1
        assert result.method == "FORA-Index"

    def test_fora_index_rebuilds_for_tighter_mu(self, engine):
        engine.query(0, method="fora+", epsilon=0.5)
        assert engine.index_builds["fora"] == 1
        # tighter mu needs a larger walk budget: must not be handed the
        # undersized cached index (used to raise IndexMismatchError)
        result = engine.query(0, method="fora+", epsilon=0.5, mu=1e-6)
        assert result.method == "FORA-Index"
        assert engine.index_builds["fora"] == 2
        # ...and the larger index now serves the default contract too
        engine.query(0, method="fora+", epsilon=0.5)
        assert engine.index_builds["fora"] == 2

    def test_walk_index_accessor_counts_builds(self, engine):
        first = engine.walk_index()
        second = engine.walk_index()
        assert first is second
        assert engine.index_builds["walk"] == 1


class TestBatchQuery:
    def test_ordering_matches_sources(self, engine):
        sources = [3, 0, 2, 0]
        results = engine.batch_query(sources, method="powerpush")
        assert [r.source for r in results] == sources

    def test_deterministic_batch_matches_individual_queries(self, engine, graph):
        sources = [0, 2, 4]
        batch = engine.batch_query(
            sources, method="powitr", l1_threshold=1e-8
        )
        for source, result in zip(sources, batch):
            ref = power_iteration(graph, source, l1_threshold=1e-8)
            np.testing.assert_array_equal(result.estimate, ref.estimate)

    def test_montecarlo_batch_is_vectorised_and_ordered(self, engine):
        sources = [4, 1, 0]
        results = engine.batch_query(
            sources, method="montecarlo", num_walks=200, seed=5
        )
        assert [r.source for r in results] == sources
        for result in results:
            assert result.method == "MonteCarlo"
            assert result.counters.random_walks == 200
            assert result.estimate.sum() == pytest.approx(1.0)

    def test_montecarlo_batch_reproducible_with_seed(self, graph):
        a = PPREngine(graph, seed=1).batch_query(
            [0, 1], method="montecarlo", num_walks=100, seed=9
        )
        b = PPREngine(graph, seed=2).batch_query(
            [0, 1], method="montecarlo", num_walks=100, seed=9
        )
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left.estimate, right.estimate)

    def test_seeded_batch_is_a_function_of_seed_and_source(self, engine):
        # Seeded batches derive one stream per source *id* (see
        # per_source_rng), so the same source listed twice gets the
        # same answer and distinct sources get independent streams.
        results = engine.batch_query(
            [0, 0, 1], method="montecarlo", num_walks=400, seed=3
        )
        np.testing.assert_array_equal(
            results[0].estimate, results[1].estimate
        )
        assert not np.array_equal(results[0].estimate, results[2].estimate)

    def test_montecarlo_batch_preserves_total_walk_steps(
        self, engine, monkeypatch
    ):
        import repro.api.engine as engine_module

        observed = {}
        real = engine_module.simulate_walk_stops

        def spy(*args, **kwargs):
            stops, steps = real(*args, **kwargs)
            observed["steps"] = steps
            return stops, steps

        monkeypatch.setattr(engine_module, "simulate_walk_stops", spy)
        # Unseeded: the cross-source grouped simulation, whose batch
        # totals are apportioned evenly across sources.
        results = engine.batch_query(
            [0, 1, 2], method="montecarlo", num_walks=100
        )
        attributed = sum(r.counters.walk_steps for r in results)
        assert attributed == observed["steps"]  # no remainder lost
        assert max(r.counters.walk_steps for r in results) - min(
            r.counters.walk_steps for r in results
        ) <= 1

    def test_batch_shares_one_walk_index(self, engine):
        engine.batch_query([0, 1, 2], method="speedppr", epsilon=0.5)
        assert engine.index_builds["walk"] == 1


class TestSeededBatchOrderIndependence:
    """Seeded ``batch_query`` answers are order-independent.

    The per-source stream derivation (:func:`per_source_rng`) keys on
    the source *id*, so under a fixed seed a source's answer is the
    same whether the batch is permuted, split, shrunk to a singleton,
    or answered sequentially with the documented derived stream.
    """

    def test_montecarlo_permutation_invariant(self, engine):
        sources = [0, 1, 2, 3, 4]
        shuffled = [3, 0, 4, 2, 1]
        a = {
            r.source: r.estimate
            for r in engine.batch_query(
                sources, method="montecarlo", num_walks=300, seed=SEED
            )
        }
        b = {
            r.source: r.estimate
            for r in engine.batch_query(
                shuffled, method="montecarlo", num_walks=300, seed=SEED
            )
        }
        for source in sources:
            np.testing.assert_array_equal(a[source], b[source])

    def test_montecarlo_split_and_singleton_invariant(self, engine):
        whole = engine.batch_query(
            [0, 1, 2], method="montecarlo", num_walks=200, seed=SEED
        )
        parts = engine.batch_query(
            [1, 2], method="montecarlo", num_walks=200, seed=SEED
        )
        single = engine.batch_query(
            [0], method="montecarlo", num_walks=200, seed=SEED
        )
        np.testing.assert_array_equal(whole[1].estimate, parts[0].estimate)
        np.testing.assert_array_equal(whole[2].estimate, parts[1].estimate)
        np.testing.assert_array_equal(whole[0].estimate, single[0].estimate)

    def test_batch_member_matches_documented_sequential_stream(self, graph):
        from repro.api.engine import per_source_rng

        batch = PPREngine(graph, seed=3).batch_query(
            [2, 0, 4], method="montecarlo", num_walks=250, seed=11
        )
        fresh = PPREngine(graph, seed=99)  # engine seed must not matter
        for result in batch:
            ref = fresh.query(
                result.source,
                method="montecarlo",
                num_walks=250,
                rng=per_source_rng(11, result.source),
            )
            np.testing.assert_array_equal(result.estimate, ref.estimate)

    def test_seeded_single_query_equals_seeded_batch_member(self, graph):
        # query(s, seed=S) resolves through the same per-source
        # derivation as a seeded batch: one contract everywhere.
        batch = PPREngine(graph, seed=3).batch_query(
            [1, 4], method="montecarlo", num_walks=250, seed=11
        )
        single = PPREngine(graph, seed=99).query(
            4, method="montecarlo", num_walks=250, seed=11
        )
        np.testing.assert_array_equal(batch[1].estimate, single.estimate)

    def test_index_free_speedppr_permutation_invariant(self, engine):
        kwargs = dict(
            method="speedppr", epsilon=0.4, use_index=False, seed=SEED
        )
        a = {
            r.source: r.estimate
            for r in engine.batch_query([0, 1, 2], **kwargs)
        }
        b = {
            r.source: r.estimate
            for r in engine.batch_query([2, 0, 1], **kwargs)
        }
        for source in a:
            np.testing.assert_array_equal(a[source], b[source])

    def test_per_source_rng_rejects_negative_inputs(self):
        from repro.api.engine import per_source_rng

        with pytest.raises(ParameterError, match="non-negative"):
            per_source_rng(-1, 0)
        with pytest.raises(ParameterError, match="non-negative"):
            per_source_rng(1, -2)


class TestTopK:
    def test_default_is_certified(self, engine):
        answer = engine.top_k(0, 3)
        assert answer.certified
        exact = power_iteration(engine.graph, 0, l1_threshold=1e-12)
        expected = [node for node, _ in exact.top_k(3)]
        assert [node for node, _ in answer.ranking] == expected

    def test_explicit_method_ranks_that_estimate(self, engine):
        answer = engine.top_k(0, 2, method="powitr", l1_threshold=1e-10)
        assert len(answer.ranking) == 2
        assert answer.certified  # tight threshold separates top-2 here

    def test_rejects_bad_k(self, engine):
        with pytest.raises(ParameterError):
            engine.top_k(0, 0)

    def test_default_top_k_honours_engine_dead_end_policy(self):
        from repro.graph.build import from_edges

        graph = from_edges([(0, 1), (1, 2)], num_nodes=3)  # 2 is a dead end
        engine = PPREngine(graph, dead_end_policy="uniform-teleport")
        ranking = [n for n, _ in engine.top_k(0, 3).ranking]
        query_ranking = [
            n for n, _ in engine.query(0, method="powerpush").top_k(3)
        ]
        assert ranking == query_ranking  # same policy as the engine's queries

    def test_approx_methods_are_never_certified(self, engine):
        # the gap > r_sum certificate assumes a pure push
        # underestimate, which Monte-Carlo refinement breaks
        answer = engine.top_k(0, 2, method="speedppr", epsilon=0.5)
        assert not answer.certified
        assert len(answer.ranking) == 2


class TestEngineBehaviour:
    def test_unknown_method_raises(self, engine):
        with pytest.raises(UnknownMethodError):
            engine.query(0, method="quantum-ppr")

    def test_alpha_default_flows_from_engine(self, graph):
        engine = PPREngine(graph, alpha=0.5)
        result = engine.query(0, method="powitr", l1_threshold=1e-8)
        assert result.alpha == 0.5

    def test_stats_aggregate_per_method(self, engine):
        engine.query(0, method="powerpush")
        engine.query(1, method="powerpush")
        engine.query(0, method="montecarlo", num_walks=50)
        stats = engine.stats
        assert stats.queries == 3
        assert stats.by_method["PowerPush"].queries == 2
        assert stats.by_method["MonteCarlo"].counters.random_walks == 50
        assert "PowerPush" in stats.render()

    def test_unseeded_stochastic_queries_differ_but_replay(self, graph):
        first = PPREngine(graph, seed=42)
        second = PPREngine(graph, seed=42)
        a1 = first.query(0, method="montecarlo", num_walks=300)
        a2 = first.query(0, method="montecarlo", num_walks=300)
        b1 = second.query(0, method="montecarlo", num_walks=300)
        # two queries on one engine use different streams...
        assert not np.array_equal(a1.estimate, a2.estimate)
        # ...but the engine as a whole replays deterministically
        np.testing.assert_array_equal(a1.estimate, b1.estimate)

    def test_alpha_override_bypasses_cached_walk_index(self, engine, graph):
        engine.query(0, method="speedppr", epsilon=0.5)  # cache at alpha=0.2
        result = engine.query(
            0, method="speedppr", alpha=0.3, epsilon=0.5, seed=SEED
        )
        # must not be served from the alpha=0.2 index
        assert result.method == "SpeedPPR"
        assert result.alpha == 0.3
        ref = speed_ppr(graph, 0, alpha=0.3, rng=per_source_rng(SEED, 0))
        np.testing.assert_array_equal(result.estimate, ref.estimate)

    def test_alpha_override_bypasses_cached_bepi_index(self, engine, graph):
        engine.query(0, method="bepi")  # cache at alpha=0.2
        result = engine.query(0, method="bepi", alpha=0.5, delta=1e-10)
        assert engine.index_builds["bepi"] == 1  # cache untouched
        ref = power_iteration(graph, 0, alpha=0.5, l1_threshold=1e-12)
        assert np.abs(result.estimate - ref.estimate).sum() < 1e-6

    def test_explicit_use_index_with_alpha_override_builds_ad_hoc(
        self, engine
    ):
        result = engine.query(
            0, method="speedppr", alpha=0.3, epsilon=0.5,
            use_index=True, seed=SEED,
        )
        assert result.method == "SpeedPPR-Index"
        assert result.alpha == 0.3
        assert engine.index_builds["walk"] == 0  # not the engine cache

    def test_batch_query_rejects_unknown_parameters(self, engine):
        with pytest.raises(ParameterError):
            engine.batch_query([0, 1], method="montecarlo", num_walk=100)

    def test_typoed_param_rejected_before_index_build(self, engine):
        with pytest.raises(ParameterError):
            engine.query(0, method="speedppr", epsilom=0.3)
        assert engine.index_builds["walk"] == 0
        with pytest.raises(ParameterError):
            engine.query(0, method="bepi", detla=1e-8)
        assert engine.index_builds["bepi"] == 0

    def test_batch_montecarlo_rejects_zero_mu_like_single_query(self, engine):
        with pytest.raises(ParameterError):
            engine.batch_query([0, 1], method="montecarlo", mu=0.0)

    def test_batch_montecarlo_chunks_large_batches(
        self, engine, monkeypatch
    ):
        import repro.api.engine as engine_module

        calls = []
        real = engine_module.simulate_walk_stops

        def spy(graph, starts, **kwargs):
            calls.append(starts.shape[0])
            return real(graph, starts, **kwargs)

        monkeypatch.setattr(engine_module, "simulate_walk_stops", spy)
        monkeypatch.setattr(engine_module, "_BATCH_WALK_BUDGET", 250)
        sources = [0, 1, 2, 3, 4]
        results = engine.batch_query(
            sources, method="montecarlo", num_walks=100, seed=1
        )
        assert len(calls) > 1  # split into groups
        assert max(calls) <= 250
        assert [r.source for r in results] == sources
        for result in results:
            assert result.counters.random_walks == 100
            assert result.estimate.sum() == pytest.approx(1.0)

    def test_adopted_prebuilt_index_is_not_rebuilt(self, graph):
        donor = PPREngine(graph, seed=0)
        index = donor.walk_index()
        engine = PPREngine(graph, seed=0, walk_index=index)
        engine.query(0, method="speedppr", epsilon=0.5)
        assert engine.index_builds["walk"] == 0
