"""Unit tests for graph I/O (SNAP edge lists and binary cache)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edges, paper_example_graph
from repro.graph.io import (
    load_npz,
    parse_edge_list,
    read_edge_list,
    save_npz,
    write_edge_list,
)


class TestParseEdgeList:
    def test_basic(self):
        graph, report = parse_edge_list("0 1\n1 2\n2 0\n")
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_comments_and_blank_lines(self):
        text = "# SNAP header\n% alt comment\n\n0\t1\n1\t0\n"
        graph, _ = parse_edge_list(text)
        assert graph.num_edges == 2

    def test_symmetrize(self):
        graph, _ = parse_edge_list("0 1\n", symmetrize=True)
        assert graph.num_edges == 2

    def test_sparse_ids_relabelled(self):
        graph, _ = parse_edge_list("1000 2000\n2000 1000\n")
        assert graph.num_nodes == 2

    def test_rejects_wrong_token_count(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_edge_list("0 1 2\n")

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            parse_edge_list("a b\n")

    def test_rejects_negative_id(self):
        with pytest.raises(GraphFormatError, match="negative"):
            parse_edge_list("-1 0\n")


class TestFileRoundTrips:
    def test_edge_list_round_trip(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded, report = read_edge_list(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        sources_a, targets_a = graph.edge_array()
        sources_b, targets_b = loaded.edge_array()
        np.testing.assert_array_equal(sources_a, sources_b)
        np.testing.assert_array_equal(targets_a, targets_b)

    def test_read_uses_filename_as_default_name(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        write_edge_list(from_edges([(0, 1), (1, 0)]), path)
        loaded, _ = read_edge_list(path)
        assert loaded.name == "mygraph"

    def test_npz_round_trip(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded == graph
        assert loaded.name == graph.name
        assert loaded.undirected_origin == graph.undirected_origin

    def test_npz_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz file")
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_npz_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, out_indptr=np.array([0, 0]))
        with pytest.raises(GraphFormatError):
            load_npz(path)
