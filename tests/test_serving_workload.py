"""Tests for the workload generator and the load/soak harness."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph
from repro.serving import WorkloadGenerator, run_loadtest


def make_static():
    return rmat_digraph(
        9, 3000, rng=np.random.default_rng(1), name="wl-static"
    )


def make_dynamic():
    return DynamicGraph(
        rmat_digraph(9, 3000, rng=np.random.default_rng(1), name="wl-dyn")
    )


class TestWorkloadGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(512, seed=5).generate(50)
        b = WorkloadGenerator(512, seed=5).generate(50)
        assert a.operations == b.operations
        c = WorkloadGenerator(512, seed=6).generate(50)
        assert a.operations != c.operations

    def test_read_only_by_default(self):
        workload = WorkloadGenerator(512, seed=1).generate(40)
        assert workload.num_updates == 0
        assert workload.num_queries == 40

    def test_read_write_mix(self):
        workload = WorkloadGenerator(
            512, read_fraction=0.5, seed=1
        ).generate(200)
        assert workload.num_updates > 40
        assert workload.num_queries > 40
        for op in workload.operations:
            assert (op.kind == "update") == (op.source == -1)

    def test_zipf_skew_concentrates_the_head(self):
        flat = WorkloadGenerator(
            512, num_sources=16, zipf_exponent=0.0, seed=2
        ).generate(800)
        skewed = WorkloadGenerator(
            512, num_sources=16, zipf_exponent=1.5, seed=2
        ).generate(800)

        def top_share(workload):
            counts = {}
            for op in workload.queries():
                counts[op.source] = counts.get(op.source, 0) + 1
            return max(counts.values()) / workload.num_queries

        assert top_share(skewed) > 2 * top_share(flat)

    def test_sources_stay_in_hot_set(self):
        workload = WorkloadGenerator(64, num_sources=4, seed=3).generate(100)
        assert workload.distinct_sources <= 4
        assert all(
            0 <= op.source < 64 for op in workload.queries()
        )

    def test_open_loop_arrivals_are_increasing(self):
        workload = WorkloadGenerator(
            64, arrival="open", arrival_rate=100.0, seed=4
        ).generate(50)
        arrivals = [op.at for op in workload.operations]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[-1] > 0.1  # ~50 ops at 100/s

    def test_closed_loop_has_no_timestamps(self):
        workload = WorkloadGenerator(64, seed=4).generate(10)
        assert all(op.at == 0.0 for op in workload.operations)

    def test_update_rng_reproducible(self):
        workload = WorkloadGenerator(64, seed=9).generate(5)
        a = workload.update_rng().integers(0, 1000, 4)
        b = workload.update_rng().integers(0, 1000, 4)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sources": 0},
            {"num_sources": 100},
            {"zipf_exponent": -0.1},
            {"read_fraction": 1.5},
            {"arrival": "poisson"},
            {"arrival_rate": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            WorkloadGenerator(64, **kwargs)

    def test_generate_rejects_empty(self):
        with pytest.raises(ParameterError):
            WorkloadGenerator(64).generate(0)

    def test_describe_mentions_shape(self):
        workload = WorkloadGenerator(
            64, num_sources=8, zipf_exponent=1.3, seed=0
        ).generate(20)
        text = workload.describe()
        assert "20 ops" in text and "s=1.3" in text and "8 hot" in text


class TestRunLoadtest:
    def test_read_only_closed_loop_is_identical_and_measured(self):
        workload = WorkloadGenerator(
            make_static().num_nodes, num_sources=12, zipf_exponent=1.2, seed=5
        ).generate(60)
        report = run_loadtest(
            make_static,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-6},
            concurrency=3,
            window=0.001,
            seed=5,
        )
        assert report.identical is True
        assert report.served.queries == 60
        assert report.serial.queries == 60
        assert report.served.throughput_qps > 0
        assert report.speedup > 0
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.batching_factor >= 1.0
        payload = report.to_dict()
        assert payload["identical"] is True
        assert payload["served"]["p99_ms"] >= payload["served"]["p50_ms"]
        assert "speedup" in report.render() or "speedup:" in report.render()

    def test_open_loop_runs(self):
        workload = WorkloadGenerator(
            make_static().num_nodes,
            num_sources=8,
            arrival="open",
            arrival_rate=3000.0,
            seed=6,
        ).generate(40)
        report = run_loadtest(
            make_static,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-6},
            concurrency=1,
            window=0.001,
            seed=6,
        )
        assert report.identical is True
        assert report.served.queries == 40

    def test_soak_with_writes_completes_consistently(self):
        workload = WorkloadGenerator(
            make_dynamic().num_nodes,
            num_sources=10,
            read_fraction=0.85,
            seed=7,
        ).generate(60)
        assert workload.num_updates > 0
        report = run_loadtest(
            make_dynamic,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-6},
            concurrency=3,
            window=0.001,
            seed=7,
        )
        # writes make byte-comparison meaningless, reported as None
        assert report.identical is None
        assert report.served.updates == workload.num_updates
        stats = report.server_stats
        assert stats["graph_version"] == workload.num_updates

    def test_soak_applies_the_same_updates_as_serial(self):
        """Both runs must sample/apply the identical update stream
        (claim-ordered), so the two final graphs match exactly."""
        workload = WorkloadGenerator(
            make_dynamic().num_nodes,
            num_sources=10,
            read_fraction=0.7,
            seed=11,
        ).generate(60)
        graphs = []

        def tracked_make_dynamic():
            graph = make_dynamic()
            graphs.append(graph)
            return graph

        run_loadtest(
            tracked_make_dynamic,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-6},
            concurrency=4,
            window=0.001,
            seed=11,
        )
        served_graph, serial_graph = graphs
        assert served_graph.version == serial_graph.version > 0
        a_sources, a_targets = served_graph.snapshot().edge_array()
        b_sources, b_targets = serial_graph.snapshot().edge_array()
        np.testing.assert_array_equal(a_sources, b_sources)
        np.testing.assert_array_equal(a_targets, b_targets)

    def test_stochastic_method_reports_identical_none(self):
        workload = WorkloadGenerator(
            make_static().num_nodes, num_sources=6, seed=8
        ).generate(20)
        report = run_loadtest(
            make_static,
            workload,
            method="montecarlo",
            params={"num_walks": 100, "seed": 3},
            concurrency=2,
            seed=8,
        )
        assert report.identical is None
        assert report.method == "montecarlo"

    def test_updates_require_dynamic_graph(self):
        workload = WorkloadGenerator(
            make_static().num_nodes, read_fraction=0.5, seed=9
        ).generate(30)
        with pytest.raises(ParameterError, match="DynamicGraph"):
            run_loadtest(make_static, workload, concurrency=1)

    def test_rejects_bad_concurrency(self):
        workload = WorkloadGenerator(64, seed=0).generate(5)
        with pytest.raises(ParameterError, match="concurrency"):
            run_loadtest(make_static, workload, concurrency=0)

    def test_slo_run_accounts_every_request(self):
        """SLO-aware runs bucket every request exactly once (completed,
        shed, deadline-expired, or failed) — `accounted == queries` is
        the no-hung-futures invariant — and every answer actually
        served stays byte-identical to the serial baseline."""
        workload = WorkloadGenerator(
            make_static().num_nodes,
            num_sources=8,
            arrival="open",
            arrival_rate=4000.0,  # well past a tiny server's capacity
            seed=12,
        ).generate(60)
        report = run_loadtest(
            make_static,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-7},
            concurrency=1,
            window=0.001,
            seed=12,
            slo_ms=50.0,
            deadline_ms=150.0,
            max_inflight=8,
            degrade_params={"l1_threshold": 1e-3},
        )
        served = report.served
        assert served.accounted == served.queries == 60
        assert served.failed == 0
        assert served.completed >= 1
        assert served.within_slo <= served.completed
        assert served.goodput_qps >= 0.0
        assert 0.0 <= served.shed_rate <= 1.0
        assert report.identical is True  # served answers, full + degraded
        assert report.frontdoor  # snapshot travels on the report
        assert report.frontdoor["submitted"] == 60
        payload = report.to_dict()
        assert payload["served"]["accounted"] == 60
        assert payload["served"]["slo_ms"] == 50.0
        assert "goodput" in report.render()

    def test_slo_requires_open_loop(self):
        workload = WorkloadGenerator(
            make_static().num_nodes, seed=13
        ).generate(10)
        with pytest.raises(ParameterError, match="open-loop"):
            run_loadtest(make_static, workload, slo_ms=50.0)

    def test_slo_requires_read_only(self):
        workload = WorkloadGenerator(
            make_dynamic().num_nodes,
            read_fraction=0.5,
            arrival="open",
            arrival_rate=500.0,
            seed=14,
        ).generate(30)
        with pytest.raises(ParameterError, match="read-only"):
            run_loadtest(make_dynamic, workload, slo_ms=50.0)

    def test_degrade_params_require_slo(self):
        workload = WorkloadGenerator(
            make_static().num_nodes, seed=15
        ).generate(10)
        with pytest.raises(ParameterError, match="slo_ms"):
            run_loadtest(
                make_static,
                workload,
                degrade_params={"l1_threshold": 1e-3},
            )

    def test_json_roundtrip(self, tmp_path):
        workload = WorkloadGenerator(
            make_static().num_nodes, num_sources=6, seed=10
        ).generate(20)
        report = run_loadtest(
            make_static,
            workload,
            method="powerpush",
            params={"l1_threshold": 1e-6},
            concurrency=2,
            seed=10,
        )
        path = report.write_json(tmp_path / "bench" / "serving.json")
        import json

        payload = json.loads(path.read_text())
        assert payload["method"] == "powerpush"
        assert payload["served"]["queries"] == 20
        assert payload["speedup"] == pytest.approx(report.speedup)
