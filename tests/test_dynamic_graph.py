"""DynamicGraph: delta overlay semantics, versioning, journal, compaction."""

import numpy as np
import pytest

from repro.errors import (
    GraphConstructionError,
    NodeNotFoundError,
    ParameterError,
)
from repro.generators.rmat import rmat_digraph
from repro.graph.build import from_edges
from repro.graph.dynamic import DynamicGraph, EdgeUpdate, sample_edge_update


@pytest.fixture
def dyn(paper_graph):
    return DynamicGraph(paper_graph)


class TestOverlaySemantics:
    def test_fresh_overlay_mirrors_base(self, dyn, paper_graph):
        assert dyn.version == 0
        assert dyn.num_nodes == paper_graph.num_nodes
        assert dyn.num_edges == paper_graph.num_edges
        assert dyn.pending_updates == 0
        assert dyn.snapshot() is paper_graph
        for v in range(paper_graph.num_nodes):
            assert dyn.out_degree_of(v) == int(paper_graph.out_degree[v])
            np.testing.assert_array_equal(
                dyn.out_neighbors(v), paper_graph.out_neighbors(v)
            )

    def test_add_edge(self, dyn):
        assert not dyn.has_edge(0, 4)
        version = dyn.add_edge(0, 4)
        assert version == dyn.version == 1
        assert dyn.has_edge(0, 4)
        assert dyn.out_degree_of(0) == 3
        assert dyn.num_edges == 14
        assert dyn.pending_updates == 1
        np.testing.assert_array_equal(dyn.out_neighbors(0), [1, 2, 4])

    def test_remove_edge(self, dyn):
        dyn.remove_edge(1, 3)
        assert not dyn.has_edge(1, 3)
        assert dyn.out_degree_of(1) == 3
        assert dyn.num_edges == 12
        np.testing.assert_array_equal(dyn.out_neighbors(1), [0, 2, 4])

    def test_reinsert_after_delete_cancels(self, dyn):
        dyn.remove_edge(1, 3)
        dyn.add_edge(1, 3)
        assert dyn.has_edge(1, 3)
        assert dyn.num_edges == 13
        assert dyn.pending_updates == 0  # the overlay cancelled out
        assert dyn.version == 2  # but history is monotone

    def test_delete_freshly_inserted_edge(self, dyn):
        dyn.add_edge(0, 4)
        dyn.remove_edge(0, 4)
        assert not dyn.has_edge(0, 4)
        assert dyn.pending_updates == 0
        assert dyn.num_edges == 13

    def test_duplicate_insert_rejected(self, dyn):
        with pytest.raises(GraphConstructionError):
            dyn.add_edge(0, 1)

    def test_missing_delete_rejected(self, dyn):
        with pytest.raises(GraphConstructionError):
            dyn.remove_edge(0, 4)

    def test_self_loop_rejected(self, dyn):
        with pytest.raises(ParameterError):
            dyn.add_edge(2, 2)

    def test_out_of_range_node_rejected(self, dyn):
        with pytest.raises(NodeNotFoundError):
            dyn.add_edge(0, 99)
        with pytest.raises(NodeNotFoundError):
            dyn.out_neighbors(5)

    def test_apply_updates_batch_and_spellings(self, dyn):
        version = dyn.apply_updates(
            [("insert", 0, 4), ("-", 1, 3), ("add", 3, 4), ("remove", 3, 4)]
        )
        assert version == dyn.version == 4
        assert dyn.has_edge(0, 4)
        assert not dyn.has_edge(1, 3)
        assert not dyn.has_edge(3, 4)

    def test_apply_updates_unknown_op(self, dyn):
        with pytest.raises(ParameterError, match="unknown edge-update op"):
            dyn.apply_updates([("toggle", 0, 4)])

    def test_dead_end_detection(self):
        graph = from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        dyn = DynamicGraph(graph)
        assert not dyn.has_dead_ends
        dyn.remove_edge(2, 0)
        assert dyn.has_dead_ends
        dyn.add_edge(2, 1)
        assert not dyn.has_dead_ends


class TestJournal:
    def test_journal_records_old_degree(self, dyn):
        dyn.add_edge(0, 4)       # degree of 0 was 2
        dyn.remove_edge(0, 1)    # degree of 0 was 3
        updates = dyn.updates_since(0)
        assert updates == [
            EdgeUpdate(1, "+", 0, 4, 2),
            EdgeUpdate(2, "-", 0, 1, 3),
        ]
        assert dyn.updates_since(1) == [EdgeUpdate(2, "-", 0, 1, 3)]
        assert dyn.updates_since(2) == []

    def test_updates_since_bad_version(self, dyn):
        with pytest.raises(ParameterError):
            dyn.updates_since(5)
        with pytest.raises(ParameterError):
            dyn.updates_since(-1)

    def test_journal_survives_compaction(self, dyn):
        dyn.add_edge(0, 4)
        dyn.compact()
        assert dyn.updates_since(0) == [EdgeUpdate(1, "+", 0, 4, 2)]

    def test_trim_journal(self, dyn):
        dyn.add_edge(0, 4)
        dyn.remove_edge(0, 1)
        dyn.add_edge(2, 0)
        assert dyn.trim_journal(2) == 2
        assert dyn.journal_floor == 2
        assert dyn.updates_since(2) == [EdgeUpdate(3, "+", 2, 0, 2)]
        with pytest.raises(ParameterError, match="trimmed"):
            dyn.updates_since(1)
        # Idempotent, and versions ahead of the graph are clamped.
        assert dyn.trim_journal(2) == 0
        assert dyn.trim_journal(99) == 1
        assert dyn.journal_floor == 3
        assert dyn.updates_since(3) == []


class TestSnapshotAndCompact:
    def test_snapshot_matches_rebuilt_graph(self, dyn, paper_graph):
        dyn.apply_updates([("+", 0, 4), ("-", 1, 3), ("+", 2, 0)])
        expected_edges = [
            (u, int(v))
            for u in range(paper_graph.num_nodes)
            for v in dyn.out_neighbors(u)
        ]
        expected = from_edges(
            expected_edges, num_nodes=paper_graph.num_nodes
        )
        snap = dyn.snapshot()
        assert snap == expected
        assert snap.num_edges == dyn.num_edges

    def test_snapshot_cached_per_version(self, dyn):
        dyn.add_edge(0, 4)
        first = dyn.snapshot()
        assert dyn.snapshot() is first
        dyn.add_edge(2, 0)
        assert dyn.snapshot() is not first

    def test_compact_preserves_logical_graph(self, dyn):
        dyn.apply_updates([("+", 0, 4), ("-", 1, 3)])
        version = dyn.version
        snap_before = dyn.snapshot()
        compacted = dyn.compact()
        assert compacted == snap_before
        assert dyn.base is compacted
        assert dyn.pending_updates == 0
        assert dyn.version == version  # compaction is representational
        assert dyn.num_edges == compacted.num_edges

    def test_mutations_resume_after_compact(self, dyn):
        dyn.add_edge(0, 4)
        dyn.compact()
        dyn.remove_edge(0, 4)
        assert not dyn.has_edge(0, 4)
        assert dyn.version == 2


class TestSampleEdgeUpdate:
    def test_sampled_updates_always_apply(self):
        rng = np.random.default_rng(5)
        graph = rmat_digraph(8, 1200, rng=rng, name="sample-test")
        dyn = DynamicGraph(graph)
        for _ in range(300):
            op, u, v = sample_edge_update(dyn, rng)
            assert op in ("+", "-")
            dyn.apply_updates([(op, u, v)])
        assert dyn.version == 300
        # The sampling rules keep the evolving graph dead-end-free.
        assert not dyn.has_dead_ends
        assert not dyn.snapshot().has_dead_ends

    def test_tiny_graph_rejected(self):
        dyn = DynamicGraph(from_edges([(0, 1), (1, 0)]))
        with pytest.raises(ParameterError):
            sample_edge_update(dyn, np.random.default_rng(0))
