"""Shared fixtures for the test-suite.

Fixtures provide the canonical small graphs (including the paper's
Figure 1 example), deterministic RNGs, and medium random graphs for the
integration tests.  Everything is seeded — a failing test reproduces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.chung_lu import power_law_digraph
from repro.graph.build import (
    complete_graph,
    cycle_graph,
    from_edges,
    paper_example_graph,
    star_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_graph():
    """The 5-node graph of the paper's Figure 1 (source v1 = node 0)."""
    return paper_example_graph()


@pytest.fixture
def tiny_cycle():
    """Directed 4-cycle: simplest strongly connected fixture."""
    return cycle_graph(4)


@pytest.fixture
def tiny_complete():
    """Complete digraph on 5 nodes."""
    return complete_graph(5)


@pytest.fixture
def dead_end_graph():
    """Star with out-only edges: every leaf is a dead end."""
    return star_graph(4, bidirectional=False, name="dead-end-star")


@pytest.fixture
def two_node_graph():
    """a <-> b: the smallest graph with non-trivial PPR."""
    return from_edges([(0, 1), (1, 0)], name="two-node")


@pytest.fixture(scope="session")
def medium_graph():
    """A 300-node scale-free digraph shared by the slower tests."""
    return power_law_digraph(
        300, 1800, rng=np.random.default_rng(777), name="medium"
    )


@pytest.fixture(scope="session")
def small_random_graphs():
    """A family of random digraphs with varying density (session-cached)."""
    graphs = []
    for seed, (n, m) in enumerate([(20, 60), (50, 200), (80, 700)]):
        graphs.append(
            power_law_digraph(
                n, m, rng=np.random.default_rng(1000 + seed), name=f"rand-{n}"
            )
        )
    return graphs


def assert_close(a, b, atol=1e-10, msg=""):
    """Array closeness helper with a tight default tolerance."""
    np.testing.assert_allclose(a, b, atol=atol, rtol=0, err_msg=msg)
