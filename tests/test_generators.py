"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.generators.ba import barabasi_albert_digraph
from repro.generators.chung_lu import chung_lu_digraph, power_law_digraph
from repro.generators.datasets import (
    DATASETS,
    dataset_names,
    generate_dataset,
    load_dataset,
)
from repro.generators.powerlaw import (
    expected_pareto_mean,
    sample_power_law_degrees,
    scale_degrees_to_total,
)
from repro.generators.rmat import rmat_digraph
from repro.graph.stats import compute_stats


class TestPowerLawSampling:
    def test_respects_bounds(self, rng):
        degrees = sample_power_law_degrees(
            1000, exponent=2.5, d_min=2, d_max=50, rng=rng
        )
        assert degrees.min() >= 2
        assert degrees.max() <= 50

    def test_heavy_tail_present(self, rng):
        degrees = sample_power_law_degrees(
            5000, exponent=2.1, d_min=1, rng=rng
        )
        # A heavy-tailed sample has a max far above its mean.
        assert degrees.max() > 10 * degrees.mean()

    def test_rejects_bad_exponent(self, rng):
        with pytest.raises(ParameterError):
            sample_power_law_degrees(10, exponent=1.0, rng=rng)

    def test_rejects_bad_dmin(self, rng):
        with pytest.raises(ParameterError):
            sample_power_law_degrees(10, exponent=2.0, d_min=0, rng=rng)

    def test_empty(self, rng):
        assert sample_power_law_degrees(0, exponent=2.5, rng=rng).shape == (0,)

    def test_scale_to_total_exact(self, rng):
        degrees = sample_power_law_degrees(500, exponent=2.5, rng=rng)
        scaled = scale_degrees_to_total(degrees, 4000, rng=rng)
        assert int(scaled.sum()) == 4000
        assert scaled.min() >= 1

    def test_scale_to_total_rejects_impossible(self, rng):
        with pytest.raises(ParameterError):
            scale_degrees_to_total(np.array([1, 1, 1]), 2, rng=rng)

    def test_expected_mean_monotone_in_exponent(self):
        low = expected_pareto_mean(2.1, 1, 1000)
        high = expected_pareto_mean(3.0, 1, 1000)
        assert low > high


class TestChungLu:
    def test_edge_count_and_no_dead_ends(self, rng):
        graph = power_law_digraph(200, 1200, rng=rng)
        assert graph.num_nodes == 200
        # Dedup may shave a few edges; stay within 2%.
        assert abs(graph.num_edges - 1200) <= 24
        assert not graph.has_dead_ends

    def test_no_self_loops(self, rng):
        graph = power_law_digraph(100, 500, rng=rng)
        sources, targets = graph.edge_array()
        assert not np.any(sources == targets)

    def test_degree_weight_correlation(self, rng):
        # Nodes with 10x the out-weight should get many more out-edges.
        weights_out = np.ones(100)
        weights_out[:10] = 30.0
        graph = chung_lu_digraph(
            weights_out, np.ones(100), 800, rng=rng
        )
        heavy = graph.out_degree[:10].mean()
        light = graph.out_degree[10:].mean()
        assert heavy > 3 * light

    def test_rejects_mismatched_weights(self, rng):
        with pytest.raises(ParameterError):
            chung_lu_digraph(np.ones(5), np.ones(6), 10, rng=rng)

    def test_rejects_negative_weights(self, rng):
        with pytest.raises(ParameterError):
            chung_lu_digraph(
                np.array([-1.0, 1.0]), np.ones(2), 2, rng=rng
            )

    def test_rejects_zero_weights(self, rng):
        with pytest.raises(ParameterError):
            chung_lu_digraph(
                np.zeros(3), np.ones(3), 3, rng=rng
            )

    def test_deterministic_given_seed(self):
        a = power_law_digraph(50, 300, rng=np.random.default_rng(5))
        b = power_law_digraph(50, 300, rng=np.random.default_rng(5))
        assert a == b


class TestBarabasiAlbert:
    def test_shape(self, rng):
        graph = barabasi_albert_digraph(200, 3, rng=rng)
        assert graph.num_nodes == 200
        assert not graph.has_dead_ends
        # Every non-seed node has out-degree exactly k.
        assert np.all(graph.out_degree[4:] == 3)

    def test_preferential_attachment_concentrates_in_degree(self, rng):
        graph = barabasi_albert_digraph(500, 2, rng=rng)
        in_degree = np.sort(graph.in_degree)[::-1]
        # Top 10% of nodes should hold a disproportionate share.
        top_share = in_degree[:50].sum() / in_degree.sum()
        assert top_share > 0.25

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ParameterError):
            barabasi_albert_digraph(10, 0, rng=rng)

    def test_rejects_too_few_nodes(self, rng):
        with pytest.raises(ParameterError):
            barabasi_albert_digraph(3, 3, rng=rng)


class TestRMat:
    def test_shape_and_no_dead_ends(self, rng):
        graph = rmat_digraph(9, 3000, rng=rng)
        # Dead-end patching may add up to one edge per node beyond the
        # requested count.
        assert graph.num_edges <= 3000 + graph.num_nodes
        assert graph.num_edges > 2000
        assert not graph.has_dead_ends

    def test_skewed_degrees(self, rng):
        graph = rmat_digraph(10, 6000, rng=rng)
        degrees = graph.out_degree
        assert degrees.max() > 8 * max(degrees.mean(), 1)

    def test_rejects_bad_scale(self, rng):
        with pytest.raises(ParameterError):
            rmat_digraph(0, 10, rng=rng)

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(ParameterError):
            rmat_digraph(5, 10, a=0.9, b=0.2, c=0.2, rng=rng)

    def test_deterministic_given_seed(self):
        a = rmat_digraph(8, 800, rng=np.random.default_rng(3))
        b = rmat_digraph(8, 800, rng=np.random.default_rng(3))
        assert a == b


class TestDatasetRegistry:
    def test_six_datasets_in_order(self):
        assert dataset_names() == [
            "dblp-s",
            "webst-s",
            "pokec-s",
            "lj-s",
            "orkut-s",
            "twitter-s",
        ]

    @pytest.mark.parametrize("name", ["dblp-s", "pokec-s"])
    def test_density_matches_table1(self, name):
        graph = generate_dataset(name, scale=0.25)
        spec = DATASETS[name]
        stats = compute_stats(graph)
        assert stats.average_degree == pytest.approx(
            spec.avg_degree, rel=0.2
        )

    def test_undirected_types_are_symmetric(self):
        graph = generate_dataset("dblp-s", scale=0.1)
        sources, targets = graph.edge_array()
        forward = set(zip(sources.tolist(), targets.tolist()))
        assert all((t, s) in forward for s, t in forward)

    def test_no_dead_ends_anywhere(self):
        for name in dataset_names():
            graph = generate_dataset(name, scale=0.05)
            assert not graph.has_dead_ends, name

    def test_load_dataset_caches_in_memory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.generators import datasets as ds

        ds.clear_dataset_cache()
        first = load_dataset("dblp-s", scale=0.1)
        second = load_dataset("dblp-s", scale=0.1)
        assert first is second
        ds.clear_dataset_cache()

    def test_load_dataset_disk_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.generators import datasets as ds

        ds.clear_dataset_cache()
        first = load_dataset("webst-s", scale=0.1)
        ds.clear_dataset_cache()
        second = load_dataset("webst-s", scale=0.1)
        assert first == second
        ds.clear_dataset_cache()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ParameterError):
            generate_dataset("no-such-dataset")

    def test_scale_env_parsing(self, monkeypatch):
        from repro.generators.datasets import current_scale

        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert current_scale() == 2.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "junk")
        with pytest.raises(ParameterError):
            current_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ParameterError):
            current_scale()
