"""Tests for the extension features: global PageRank and top-k queries."""

import numpy as np
import pytest

from repro.core.pagerank import pagerank, preference_pagerank
from repro.core.powerpush import power_push
from repro.core.topk import top_k_ppr
from repro.errors import ParameterError
from repro.graph.build import complete_graph, cycle_graph, star_graph
from repro.metrics.errors import l1_error
from repro.metrics.ground_truth import exact_ppr_dense


class TestPreferencePagerank:
    def test_single_node_preference_equals_ssppr(self, paper_graph):
        preference = np.zeros(5)
        preference[0] = 1.0
        general = preference_pagerank(
            paper_graph, preference, alpha=0.2, l1_threshold=1e-10
        )
        single = power_push(paper_graph, 0, l1_threshold=1e-10)
        assert l1_error(general.estimate, single.estimate) <= 2e-10

    def test_two_seed_preference_is_linear_mix(self, paper_graph):
        preference = np.zeros(5)
        preference[0] = 0.3
        preference[3] = 0.7
        mixed = preference_pagerank(
            paper_graph, preference, l1_threshold=1e-11
        )
        pi0 = exact_ppr_dense(paper_graph, 0)
        pi3 = exact_ppr_dense(paper_graph, 3)
        np.testing.assert_allclose(
            mixed.estimate, 0.3 * pi0 + 0.7 * pi3, atol=1e-9
        )

    def test_preference_normalised(self, paper_graph):
        # Unnormalised input is accepted and normalised.
        result = preference_pagerank(
            paper_graph, np.full(5, 2.0), l1_threshold=1e-9
        )
        assert result.estimate.sum() == pytest.approx(1.0, abs=1e-8)

    def test_rejects_bad_preference(self, paper_graph):
        with pytest.raises(ParameterError):
            preference_pagerank(paper_graph, np.zeros(5))
        with pytest.raises(ParameterError):
            preference_pagerank(paper_graph, -np.ones(5))
        with pytest.raises(ParameterError):
            preference_pagerank(paper_graph, np.ones(3))


class TestGlobalPagerank:
    def test_uniform_on_symmetric_graph(self):
        graph = complete_graph(6)
        result = pagerank(graph, l1_threshold=1e-12)
        np.testing.assert_allclose(
            result.estimate, np.full(6, 1 / 6), atol=1e-10
        )

    def test_cycle_is_uniform(self):
        graph = cycle_graph(8)
        result = pagerank(graph, l1_threshold=1e-12)
        np.testing.assert_allclose(
            result.estimate, np.full(8, 1 / 8), atol=1e-10
        )

    def test_star_hub_dominates(self):
        graph = star_graph(10)
        result = pagerank(graph, l1_threshold=1e-12)
        assert result.estimate[0] > result.estimate[1:].max() * 2

    def test_dead_ends_handled(self, dead_end_graph):
        result = pagerank(dead_end_graph, l1_threshold=1e-10)
        assert result.estimate.sum() == pytest.approx(1.0, abs=1e-8)

    def test_sums_to_one(self, medium_graph):
        result = pagerank(medium_graph, l1_threshold=1e-10)
        assert result.estimate.sum() == pytest.approx(1.0, abs=1e-8)


class TestTopK:
    def test_certified_matches_ground_truth(self, medium_graph):
        truth = exact_ppr_dense(medium_graph, 3, max_nodes=1000)
        answer = top_k_ppr(medium_graph, 3, k=10)
        assert answer.certified
        expected = set(np.argsort(-truth, kind="stable")[:10].tolist())
        got = {node for node, _ in answer.ranking}
        assert got == expected

    def test_certificate_gap_exceeds_error(self, medium_graph):
        answer = top_k_ppr(medium_graph, 5, k=5)
        if answer.certified:
            assert answer.gap > answer.result.r_sum

    def test_k_larger_than_graph(self, paper_graph):
        answer = top_k_ppr(paper_graph, 0, k=10)
        assert len(answer.ranking) <= 5
        assert answer.certified

    def test_adaptive_threshold_tightens_when_needed(self, paper_graph):
        # A tight race (k between near-equal nodes) forces refinement.
        answer = top_k_ppr(
            paper_graph, 0, k=2, initial_l1_threshold=0.5
        )
        assert answer.l1_threshold <= 0.5

    def test_rejects_bad_parameters(self, paper_graph):
        with pytest.raises(ParameterError):
            top_k_ppr(paper_graph, 0, k=0)
        with pytest.raises(ParameterError):
            top_k_ppr(paper_graph, 0, k=1, shrink_factor=1.0)
        with pytest.raises(ParameterError):
            top_k_ppr(
                paper_graph,
                0,
                k=1,
                initial_l1_threshold=1e-10,
                floor_l1_threshold=1e-3,
            )

    def test_ranking_descending(self, medium_graph):
        answer = top_k_ppr(medium_graph, 1, k=8)
        scores = [score for _, score in answer.ranking]
        assert scores == sorted(scores, reverse=True)
