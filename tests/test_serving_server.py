"""Tests for :class:`repro.serving.server.EngineServer`.

The contract: futures in, version-stamped answers out; the cache is
consulted and filled under the read lock; ``apply_updates`` is
exclusive and invalidates every pre-update answer.
"""

import numpy as np
import pytest

from repro.api import PPREngine
from repro.errors import ParameterError
from repro.generators.rmat import rmat_digraph
from repro.graph.build import paper_example_graph
from repro.graph.dynamic import DynamicGraph, sample_edge_update
from repro.serving import EngineServer


@pytest.fixture
def dyn():
    rng = np.random.default_rng(17)
    return DynamicGraph(rmat_digraph(9, 3000, rng=rng, name="serve-dyn"))


@pytest.fixture
def server(dyn):
    srv = EngineServer(dyn, alpha=0.2, seed=7, window=0.0, start=False)
    yield srv
    srv.close()


def drain(server):
    return server.scheduler.run_pending()


class TestConstruction:
    def test_accepts_graph_engine_and_dynamic(self, dyn):
        assert EngineServer(paper_example_graph(), start=False).graph_version == 0
        engine = PPREngine(dyn, seed=1)
        assert EngineServer(engine, start=False).engine is engine

    def test_rejects_other_types(self):
        with pytest.raises(ParameterError, match="EngineServer needs"):
            EngineServer(object())

    def test_rejects_negative_cache_capacity(self, dyn):
        with pytest.raises(ParameterError):
            EngineServer(dyn, cache_capacity=-1)


class TestCachedServing:
    def test_miss_then_hit_same_object(self, server):
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        a = first.result(0)
        assert not a.cache_hit
        b = server.query(0, "powerpush", l1_threshold=1e-7)
        assert b.cache_hit and b.batch_size == 1
        assert b.result is a.result
        assert server.engine.stats.queries == 1

    def test_dispatch_time_cache_recheck(self, server):
        # Three identical requests queued before any dispatch: the
        # executor dedups them into one engine solve.
        futures = [
            server.submit(0, "powerpush", l1_threshold=1e-7)
            for _ in range(3)
        ]
        drain(server)
        [f.result(0) for f in futures]
        assert server.engine.stats.queries == 1

    def test_dispatch_time_hit_reports_honest_provenance(self, dyn):
        # max_batch=1 forces the two identical requests into separate
        # dispatch rounds: round 1 solves and fills the cache, round 2
        # must answer from it and say so (no phantom engine call).
        server = EngineServer(
            dyn, seed=7, window=0.0, start=False, max_batch=1
        )
        a = server.submit(0, "powerpush", l1_threshold=1e-7)
        b = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        assert not a.result(0).cache_hit
        served = b.result(0)
        assert served.cache_hit and served.batch_size == 1
        stats = server.scheduler.stats
        assert stats.engine_calls == 1
        assert stats.answered == 1
        assert stats.cache_answered == 1
        assert server.engine.stats.queries == 1
        server.close()

    def test_explicit_engine_defaults_share_the_cache_entry(self, server):
        # alpha=0.2 is the engine default: spelling it out must key
        # (and coalesce) identically to omitting it.
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        first.result(0)
        spelled = server.query(
            0, "powerpush", l1_threshold=1e-7, alpha=0.2
        )
        assert spelled.cache_hit
        assert server.engine.stats.queries == 1

    def test_fresh_bypasses_cache(self, server):
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        first.result(0)
        again = server.submit(
            0, "powerpush", fresh=True, l1_threshold=1e-7
        )
        drain(server)
        assert not again.result(0).cache_hit
        assert server.engine.stats.queries == 2

    def test_uncacheable_params_still_served(self, server):
        rng = np.random.default_rng(5)
        future = server.submit(0, "montecarlo", num_walks=100, rng=rng)
        drain(server)
        assert future.result(0).result.method == "MonteCarlo"
        # nothing was cached for it
        assert server.cache.stats.insertions == 0

    def test_cache_disabled(self, dyn):
        server = EngineServer(
            dyn, seed=7, window=0.0, start=False, cache_capacity=0
        )
        assert server.cache is None
        server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        assert server.engine.stats.queries == 2
        assert server.stats()["cache"] == {}
        server.close()

    def test_cache_disabled_still_coalesces_identical_requests(self, dyn):
        # Turning off memoisation must not turn off slot-sharing: two
        # identical requests in one dispatch still cost one solve.
        server = EngineServer(
            dyn, seed=7, window=0.0, start=False, cache_capacity=0
        )
        a = server.submit(0, "powerpush", l1_threshold=1e-7)
        b = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        assert a.result(0).result is b.result(0).result
        assert server.scheduler.stats.engine_sources == 1
        assert server.engine.stats.queries == 1
        server.close()

    def test_cached_answers_are_frozen_against_mutation(self, server):
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        served = first.result(0)
        with pytest.raises(ValueError, match="read-only"):
            served.result.estimate[0] = -1.0
        # the cached copy is intact for the next caller
        again = server.query(0, "powerpush", l1_threshold=1e-7)
        assert again.cache_hit
        assert again.result.estimate[0] >= 0.0

    def test_batch_convenience_orders_results(self, dyn):
        with EngineServer(dyn, seed=7, window=0.001) as server:
            answers = server.batch([3, 1, 2], "powerpush", l1_threshold=1e-7)
            assert [a.result.source for a in answers] == [3, 1, 2]


class TestWriterPath:
    def test_update_bumps_version_and_invalidates(self, server, dyn):
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        assert first.result(0).version == 0
        update = sample_edge_update(dyn, np.random.default_rng(3))
        version = server.apply_updates([update])
        assert version == 1
        assert server.cache.stats.invalidations >= 1
        after = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        served = after.result(0)
        assert served.version == 1
        assert not served.cache_hit

    def test_post_update_answer_reflects_new_graph(self, server, dyn):
        first = server.submit(0, "powerpush", l1_threshold=1e-9)
        drain(server)
        a = first.result(0)
        update = sample_edge_update(dyn, np.random.default_rng(4))
        server.apply_updates([update])
        second = server.submit(0, "powerpush", l1_threshold=1e-9)
        drain(server)
        b = second.result(0)
        assert not np.array_equal(a.result.estimate, b.result.estimate)

    def test_submit_after_close_raises_even_on_cache_hit(self, server):
        first = server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        first.result(0)  # entry is now cached
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(0, "powerpush", l1_threshold=1e-7)

    def test_static_graph_update_raises(self):
        server = EngineServer(paper_example_graph(), window=0.0, start=False)
        with pytest.raises(ParameterError, match="DynamicGraph"):
            server.apply_updates([("+", 0, 3)])
        server.close()


class TestStats:
    def test_stats_shape_and_counts(self, server):
        server.submit(0, "powerpush", l1_threshold=1e-7)
        drain(server)
        server.query(0, "powerpush", l1_threshold=1e-7)  # hit
        stats = server.stats()
        assert stats["requests"] == 2
        assert stats["cache_hits_at_submit"] == 1
        assert stats["hit_rate_at_submit"] == pytest.approx(0.5)
        assert stats["graph_version"] == 0
        assert stats["scheduler"]["engine_calls"] == 1
        assert stats["cache"]["insertions"] == 1
        assert stats["engine_queries"] == 1

    def test_repr_mentions_cache_and_version(self, server):
        text = repr(server)
        assert "EngineServer" in text and "version=0" in text


class TestTeardown:
    def test_close_is_idempotent(self, dyn):
        srv = EngineServer(dyn, window=0.0, start=False)
        assert not srv.closed
        srv.close()
        assert srv.closed
        srv.close()  # a second close is a no-op, not an error
        assert srv.closed

    def test_context_manager_closes(self, dyn):
        with EngineServer(dyn, window=0.0, start=False) as srv:
            assert not srv.closed
        assert srv.closed
        srv.close()  # and close after __exit__ stays idempotent
