"""Index persistence + warm start: save_indexes / load_indexes.

A restarted server adopts the saved walk-based indexes instead of
re-preprocessing — but only when the manifest's graph stamp (shape
*and* version) and alpha match; anything stale is refused outright.
"""

import json

import numpy as np
import pytest

from repro.api.engine import PPREngine
from repro.errors import IndexMismatchError
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph, sample_edge_update


@pytest.fixture
def graph():
    return rmat_digraph(
        9, 3000, rng=np.random.default_rng(31), name="persist"
    )


@pytest.fixture
def warm_engine(graph):
    """An engine with one walk index and two FORA budgets built."""
    engine = PPREngine(graph, alpha=0.2, seed=11)
    engine.walk_index()
    engine.fora_index(0.5)
    engine.fora_index(0.1)
    return engine


class TestRoundTrip:
    def test_warm_start_skips_preprocessing(self, graph, warm_engine, tmp_path):
        manifest_path = warm_engine.save_indexes(tmp_path)
        assert manifest_path.is_file()

        restarted = PPREngine(graph, alpha=0.2, seed=11)
        assert restarted.load_indexes(tmp_path) == 3
        # The adopted artefacts serve queries without a single build.
        restarted.query(0, method="speedppr", epsilon=0.3, seed=5)
        restarted.query(0, method="fora+", epsilon=0.5, seed=5)
        assert restarted.index_builds == {"walk": 0, "bepi": 0, "fora": 0}

    def test_reload_is_idempotent(self, graph, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        restarted = PPREngine(graph, alpha=0.2, seed=11)
        assert restarted.load_indexes(tmp_path) == 3
        # Loading again (or after having built) must not duplicate the
        # in-memory FORA entries.
        assert restarted.load_indexes(tmp_path) == 1  # walk re-adopted only
        assert len(restarted._fora_indexes) == 2

    def test_loaded_indexes_answer_identically(
        self, graph, warm_engine, tmp_path
    ):
        warm_engine.save_indexes(tmp_path)
        expected = warm_engine.query(
            2, method="speedppr", epsilon=0.3, seed=9
        )
        restarted = PPREngine(graph, alpha=0.2, seed=11)
        restarted.load_indexes(tmp_path)
        served = restarted.query(2, method="speedppr", epsilon=0.3, seed=9)
        np.testing.assert_array_equal(served.estimate, expected.estimate)

    def test_manifest_contents(self, graph, warm_engine, tmp_path):
        manifest_path = warm_engine.save_indexes(tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["graph"]["num_nodes"] == graph.num_nodes
        assert manifest["graph"]["num_edges"] == graph.num_edges
        assert manifest["graph"]["version"] == 0
        assert len(manifest["graph"]["fingerprint"]) == 64
        kinds = sorted(entry["kind"] for entry in manifest["indexes"])
        assert kinds == ["fora", "fora", "walk"]

    def test_restarted_server_warm_starts_rewrapped_graph(self, tmp_path):
        """The production restart path: updates applied, graph
        compacted and persisted, process restarts with a fresh
        DynamicGraph (version counter back at 0) — the saved indexes
        must still load, because staleness is judged by content."""
        dyn = DynamicGraph(
            rmat_digraph(9, 3000, rng=np.random.default_rng(31), name="p")
        )
        engine = PPREngine(dyn, alpha=0.2, seed=11)
        engine.apply_updates(
            [sample_edge_update(dyn, np.random.default_rng(3))]
        )
        engine.walk_index()
        engine.save_indexes(tmp_path)
        persisted = dyn.compact()

        restarted_graph = DynamicGraph(persisted)
        assert restarted_graph.version == 0
        restarted = PPREngine(restarted_graph, alpha=0.2, seed=11)
        assert restarted.load_indexes(tmp_path) == 1
        restarted.query(0, method="speedppr", epsilon=0.3, seed=5)
        assert restarted.index_builds["walk"] == 0


class TestArtifactIntegrity:
    """Per-artifact checksums: torn or corrupted files are refused
    with a typed error before a byte of them is trusted."""

    def test_manifest_records_checksum_and_size(
        self, graph, warm_engine, tmp_path
    ):
        manifest = json.loads(
            warm_engine.save_indexes(tmp_path).read_text()
        )
        for entry in manifest["indexes"]:
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] == (tmp_path / entry["file"]).stat().st_size

    def test_corrupted_artifact_refused(self, graph, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        target = tmp_path / "walk.npz"
        payload = bytearray(target.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        target.write_bytes(bytes(payload))
        engine = PPREngine(graph, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="SHA-256"):
            engine.load_indexes(tmp_path)

    def test_truncated_artifact_refused(self, graph, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        target = tmp_path / "walk.npz"
        target.write_bytes(target.read_bytes()[:-10])
        engine = PPREngine(graph, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="truncat"):
            engine.load_indexes(tmp_path)

    def test_deleted_artifact_refused(self, graph, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        (tmp_path / "fora_w0.5.npz").unlink(missing_ok=True)
        removed = [
            p for p in tmp_path.glob("fora_*.npz")
        ]
        if removed:
            removed[0].unlink()
        engine = PPREngine(graph, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="missing"):
            engine.load_indexes(tmp_path)


class TestStaleRefusal:
    def test_version_mismatch_refused(self, tmp_path):
        dyn = DynamicGraph(
            rmat_digraph(9, 3000, rng=np.random.default_rng(31), name="p")
        )
        engine = PPREngine(dyn, alpha=0.2, seed=11)
        engine.walk_index()
        engine.save_indexes(tmp_path)
        engine.apply_updates(
            [sample_edge_update(dyn, np.random.default_rng(0))]
        )
        with pytest.raises(IndexMismatchError, match="stale"):
            engine.load_indexes(tmp_path)

    def test_different_graph_refused(self, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        other = rmat_digraph(
            9, 2500, rng=np.random.default_rng(99), name="other"
        )
        engine = PPREngine(other, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="stale"):
            engine.load_indexes(tmp_path)

    def test_alpha_mismatch_refused(self, graph, warm_engine, tmp_path):
        warm_engine.save_indexes(tmp_path)
        engine = PPREngine(graph, alpha=0.15, seed=11)
        with pytest.raises(IndexMismatchError, match="alpha"):
            engine.load_indexes(tmp_path)

    def test_missing_manifest_refused(self, graph, tmp_path):
        engine = PPREngine(graph, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="manifest"):
            engine.load_indexes(tmp_path)

    def test_unknown_format_refused(self, graph, warm_engine, tmp_path):
        path = warm_engine.save_indexes(tmp_path)
        manifest = json.loads(path.read_text())
        manifest["format"] = 99
        path.write_text(json.dumps(manifest))
        engine = PPREngine(graph, alpha=0.2, seed=11)
        with pytest.raises(IndexMismatchError, match="format"):
            engine.load_indexes(tmp_path)

    def test_save_after_update_stamps_new_version(self, tmp_path):
        dyn = DynamicGraph(
            rmat_digraph(9, 3000, rng=np.random.default_rng(31), name="p")
        )
        engine = PPREngine(dyn, alpha=0.2, seed=11)
        engine.walk_index()
        engine.apply_updates(
            [sample_edge_update(dyn, np.random.default_rng(0))]
        )
        engine.walk_index()  # rebuild at the new version
        manifest_path = engine.save_indexes(tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["graph"]["version"] == 1
        # A second engine over the same dynamic graph warm-starts fine.
        twin = PPREngine(dyn, alpha=0.2, seed=11)
        assert twin.load_indexes(tmp_path) == 1
