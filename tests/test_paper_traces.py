"""Replay of the paper's running examples, number for number.

* Figure 2: FwdPush on the Figure 1 graph with ``s = v1``,
  ``alpha = 0.2``, ``r_max = 0.099``, push order v1, v3, v2.
* Figure 3: SimFwdPush on the same graph with ``r_max = 0``; the
  residues after iterations 1 and 2 are printed in the figure.
* Section 4.2's FIFO iteration example: ``S(0) = {v1}``,
  ``S(1) = {v2, v3}``, ``S(2) = all five nodes``.

Node ids: v1..v5 -> 0..4.
"""

import numpy as np
import pytest

from repro.core.fwdpush import forward_push
from repro.core.power_iteration import power_iteration
from repro.core.residues import PushState
from repro.core.sim_fwdpush import simultaneous_forward_push


class TestFigure2Trace:
    """The three pushes of Figure 2, asserted exactly."""

    R_MAX = 0.099

    def test_state_after_push_v1(self, paper_graph):
        state = PushState(paper_graph, 0, alpha=0.2)
        state.push(0)
        np.testing.assert_allclose(
            state.reserve, [0.2, 0, 0, 0, 0], atol=1e-15
        )
        np.testing.assert_allclose(
            state.residue, [0, 0.4, 0.4, 0, 0], atol=1e-15
        )

    def test_state_after_push_v3(self, paper_graph):
        state = PushState(paper_graph, 0, alpha=0.2)
        state.push(0)
        state.push(2)
        np.testing.assert_allclose(
            state.reserve, [0.2, 0, 0.08, 0, 0], atol=1e-15
        )
        np.testing.assert_allclose(
            state.residue, [0, 0.56, 0, 0.16, 0], atol=1e-15
        )

    def test_state_after_push_v2_terminates(self, paper_graph):
        state = PushState(paper_graph, 0, alpha=0.2)
        for node in (0, 2, 1):
            state.push(node)
        np.testing.assert_allclose(
            state.reserve, [0.2, 0.112, 0.08, 0, 0], atol=1e-15
        )
        np.testing.assert_allclose(
            state.residue, [0.112, 0, 0.112, 0.272, 0.112], atol=1e-15
        )
        # Figure 2 ends here: no node is active at r_max = 0.099.
        assert state.active_nodes(self.R_MAX).shape[0] == 0

    def test_active_sets_along_the_trace(self, paper_graph):
        state = PushState(paper_graph, 0, alpha=0.2)
        assert state.active_nodes(self.R_MAX).tolist() == [0]
        state.push(0)
        assert state.active_nodes(self.R_MAX).tolist() == [1, 2]
        state.push(2)
        assert state.active_nodes(self.R_MAX).tolist() == [1]

    def test_forward_push_terminal_error(self, paper_graph):
        # Figure 2 pushes v1, v3, v2 (r_sum = 0.608).  FIFO pops v2
        # before v3 and terminates at r_sum = 0.624 — both are valid
        # "arbitrary active node" schedules, and both respect the
        # m * r_max = 1.287 bound of Eq. 7.
        result = forward_push(paper_graph, 0, alpha=0.2, r_max=self.R_MAX)
        assert result.residue is not None
        assert result.residue.sum() == pytest.approx(0.624, abs=1e-12)
        assert result.residue.sum() <= paper_graph.num_edges * self.R_MAX
        # No node is active at termination.
        assert result.residue.max() <= 4 * self.R_MAX


class TestFigure3Trace:
    """SimFwdPush residues after iterations 1 and 2 (Figure 3)."""

    def test_residues_per_iteration(self, paper_graph):
        result, iterates = simultaneous_forward_push(
            paper_graph,
            0,
            alpha=0.2,
            l1_threshold=0.65,  # stops after exactly two iterations
            record_iterates=True,
        )
        assert len(iterates) == 2
        np.testing.assert_allclose(
            iterates[0]["residue"], [0, 0.4, 0.4, 0, 0], atol=1e-15
        )
        np.testing.assert_allclose(
            iterates[1]["residue"],
            [0.08, 0.16, 0.08, 0.24, 0.08],
            atol=1e-15,
        )

    def test_iteration_error_is_power_of_one_minus_alpha(self, paper_graph):
        result, iterates = simultaneous_forward_push(
            paper_graph,
            0,
            alpha=0.2,
            l1_threshold=0.3,
            record_iterates=True,
        )
        for j, snapshot in enumerate(iterates, start=1):
            assert snapshot["residue"].sum() == pytest.approx(
                0.8**j, abs=1e-12
            )


class TestSection42FifoIterations:
    """The S(j) frontier sets of Section 4.2's example.

    The example states S(0) = {v1}, S(1) = {v2, v3}, and that after the
    second iteration all five nodes are active.  We verify this with
    iteration-synchronous (simultaneous) pushes of each frontier, which
    is the structure the Lemma 4.4 analysis reasons about.
    """

    def test_frontier_sets(self, paper_graph):
        from repro.core.kernels import frontier_push

        r_max = 0.001
        state = PushState(paper_graph, 0, alpha=0.2)
        s0 = state.active_nodes(r_max)
        assert s0.tolist() == [0]

        frontier_push(state, s0)
        s1 = state.active_nodes(r_max)
        assert s1.tolist() == [1, 2]

        frontier_push(state, s1)
        s2 = state.active_nodes(r_max)
        assert s2.tolist() == [0, 1, 2, 3, 4]


class TestPowItrMatchesFigure3:
    """PowItr's gamma vectors are Figure 3's residues (Lemma 4.1)."""

    def test_gamma_after_one_iteration(self, paper_graph):
        result = power_iteration(
            paper_graph, 0, alpha=0.2, l1_threshold=0.65
        )
        # Stops after 2 iterations: residue = gamma(2) from Figure 3.
        assert result.residue is not None
        np.testing.assert_allclose(
            result.residue, [0.08, 0.16, 0.08, 0.24, 0.08], atol=1e-12
        )
