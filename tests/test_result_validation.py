"""Unit tests for PPRResult and the shared validation helpers."""

import math

import numpy as np
import pytest

from repro.core.result import PPRResult
from repro.core.validation import (
    check_alpha,
    check_epsilon,
    check_failure_probability,
    check_l1_threshold,
    check_mu,
    check_r_max,
    check_source,
    default_l1_threshold,
)
from repro.errors import NodeNotFoundError, ParameterError
from repro.graph.build import cycle_graph, empty_graph


class TestPPRResult:
    def _result(self, values):
        return PPRResult(
            estimate=np.asarray(values, dtype=float),
            residue=np.zeros(len(values)),
            source=0,
            alpha=0.2,
        )

    def test_top_k_descending_with_ties_by_id(self):
        result = self._result([0.1, 0.5, 0.5, 0.3])
        assert result.top_k(3) == [
            (1, 0.5),
            (2, 0.5),
            (3, 0.3),
        ]

    def test_top_k_clamps(self):
        result = self._result([0.2, 0.8])
        assert len(result.top_k(10)) == 2
        assert result.top_k(0) == []
        assert result.top_k(-3) == []

    def test_r_sum_without_residue_is_nan(self):
        result = PPRResult(
            estimate=np.ones(2), residue=None, source=0, alpha=0.2
        )
        assert math.isnan(result.r_sum)

    def test_r_sum_with_residue(self):
        result = PPRResult(
            estimate=np.zeros(3),
            residue=np.array([0.1, 0.2, 0.3]),
            source=0,
            alpha=0.2,
        )
        assert result.r_sum == pytest.approx(0.6)


class TestValidationHelpers:
    def test_alpha_domain(self):
        assert check_alpha(0.2) == 0.2
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ParameterError):
                check_alpha(bad)

    def test_source_domain(self):
        graph = cycle_graph(4)
        assert check_source(graph, 3) == 3
        assert check_source(graph, np.int64(2)) == 2
        with pytest.raises(NodeNotFoundError):
            check_source(graph, 4)
        with pytest.raises(NodeNotFoundError):
            check_source(graph, -1)
        with pytest.raises(ParameterError):
            check_source(graph, "zero")

    def test_l1_threshold_domain(self):
        assert check_l1_threshold(1.0) == 1.0
        assert check_l1_threshold(1e-12) == 1e-12
        for bad in (0.0, 1.5, -1e-9):
            with pytest.raises(ParameterError):
                check_l1_threshold(bad)

    def test_r_max_domain(self):
        assert check_r_max(0.0) == 0.0
        assert check_r_max(1.0) == 1.0
        with pytest.raises(ParameterError):
            check_r_max(-0.1)
        with pytest.raises(ParameterError):
            check_r_max(1.1)

    def test_epsilon_domain(self):
        assert check_epsilon(2.5) == 2.5
        with pytest.raises(ParameterError):
            check_epsilon(0.0)

    def test_mu_domain(self):
        assert check_mu(1.0) == 1.0
        with pytest.raises(ParameterError):
            check_mu(0.0)
        with pytest.raises(ParameterError):
            check_mu(1.0001)

    def test_failure_probability_domain(self):
        assert check_failure_probability(0.5) == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ParameterError):
                check_failure_probability(bad)

    def test_default_l1_threshold(self):
        # min(1e-8, 1/m): small graph -> 1e-8; huge m -> 1/m.
        assert default_l1_threshold(cycle_graph(5)) == pytest.approx(1e-8)
        assert default_l1_threshold(empty_graph(3)) == pytest.approx(1e-8)


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"
