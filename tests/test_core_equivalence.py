"""Lemma 4.1 — SimFwdPush is equivalent to PowItr, iterate by iterate.

The check is meaningful because the two implementations use different
numeric paths: PowItr propagates through a scipy sparse mat-vec, while
SimFwdPush uses the gather/scatter frontier kernel.  Agreement at
~1e-12 therefore cross-validates both kernels.
"""

import numpy as np
import pytest

from repro.core.power_iteration import power_iteration
from repro.core.sim_fwdpush import simultaneous_forward_push
from repro.graph.build import cycle_graph, star_graph


def _pow_itr_iterates(graph, source, alpha, num_iterations):
    """Reference PowItr iterates computed with dense NumPy."""
    n = graph.num_nodes
    transition = np.zeros((n, n))
    for v in range(n):
        neighbors = graph.out_neighbors(v)
        if neighbors.shape[0]:
            transition[v, neighbors] = 1.0 / neighbors.shape[0]
        else:
            transition[v, source] = 1.0
    gamma = np.zeros(n)
    gamma[source] = 1.0
    reserve = np.zeros(n)
    iterates = []
    for _ in range(num_iterations):
        reserve = reserve + alpha * gamma
        gamma = (1.0 - alpha) * gamma @ transition
        iterates.append((gamma.copy(), reserve.copy()))
    return iterates


@pytest.mark.parametrize("alpha", [0.2, 0.5])
class TestLemma41:
    def test_iterates_match_dense_reference(self, paper_graph, alpha):
        threshold = 1e-5
        _, iterates = simultaneous_forward_push(
            paper_graph,
            0,
            alpha=alpha,
            l1_threshold=threshold,
            record_iterates=True,
        )
        reference = _pow_itr_iterates(paper_graph, 0, alpha, len(iterates))
        for (got, want) in zip(iterates, reference):
            np.testing.assert_allclose(
                got["residue"], want[0], atol=1e-12
            )
            np.testing.assert_allclose(
                got["reserve"], want[1], atol=1e-12
            )

    def test_final_vectors_match_powitr(self, paper_graph, alpha):
        threshold = 1e-8
        sim = simultaneous_forward_push(
            paper_graph, 0, alpha=alpha, l1_threshold=threshold
        )
        pow_itr = power_iteration(
            paper_graph, 0, alpha=alpha, l1_threshold=threshold
        )
        np.testing.assert_allclose(
            sim.estimate, pow_itr.estimate, atol=1e-12
        )
        assert sim.residue is not None and pow_itr.residue is not None
        np.testing.assert_allclose(
            sim.residue, pow_itr.residue, atol=1e-12
        )

    def test_same_iteration_count(self, paper_graph, alpha):
        sim = simultaneous_forward_push(
            paper_graph, 0, alpha=alpha, l1_threshold=1e-7
        )
        pow_itr = power_iteration(
            paper_graph, 0, alpha=alpha, l1_threshold=1e-7
        )
        assert sim.counters.iterations == pow_itr.counters.iterations


class TestEquivalenceOnOtherTopologies:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle_graph(7),
            lambda: star_graph(5),
        ],
    )
    def test_final_vectors_match(self, graph_factory):
        graph = graph_factory()
        sim = simultaneous_forward_push(graph, 0, l1_threshold=1e-9)
        pow_itr = power_iteration(graph, 0, l1_threshold=1e-9)
        np.testing.assert_allclose(
            sim.estimate, pow_itr.estimate, atol=1e-12
        )

    def test_medium_random_graph(self, medium_graph):
        sim = simultaneous_forward_push(medium_graph, 11, l1_threshold=1e-8)
        pow_itr = power_iteration(medium_graph, 11, l1_threshold=1e-8)
        np.testing.assert_allclose(
            sim.estimate, pow_itr.estimate, atol=1e-11
        )

    def test_counters_bill_only_residue_holders(self, paper_graph):
        # SimFwdPush's first iteration pushes only the source.
        result = simultaneous_forward_push(
            paper_graph, 0, l1_threshold=0.65
        )
        # Iteration 1: push v1 (degree 2).  Iteration 2: v2, v3
        # (degrees 4 + 2).  Total = 8 updates.
        assert result.counters.residue_updates == 8
