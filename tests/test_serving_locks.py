"""Tests for the readers-writer lock (:mod:`repro.serving.locks`)."""

import threading
import time

import pytest

from repro.serving.locks import RWLock


class TestRWLock:
    def test_readers_overlap(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read():
                inside.wait()  # all three readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        writer_in = threading.Event()
        release_writer = threading.Event()
        reader_done = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                release_writer.wait(5.0)

        def reader():
            with lock.read():
                reader_done.set()

        w = threading.Thread(target=writer)
        w.start()
        assert writer_in.wait(5.0)
        r = threading.Thread(target=reader)
        r.start()
        time.sleep(0.05)
        assert not reader_done.is_set()  # blocked behind the writer
        release_writer.set()
        assert reader_done.wait(5.0)
        w.join(5.0)
        r.join(5.0)

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        writer_done = threading.Event()
        second_reader_done = threading.Event()

        def first_reader():
            with lock.read():
                first_reader_in.set()
                release_first_reader.wait(5.0)

        def writer():
            with lock.write():
                writer_done.set()

        def second_reader():
            with lock.read():
                second_reader_done.set()

        r1 = threading.Thread(target=first_reader)
        r1.start()
        assert first_reader_in.wait(5.0)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # let the writer queue up
        r2 = threading.Thread(target=second_reader)
        r2.start()
        time.sleep(0.05)
        # writer preference: the late reader waits behind the writer
        assert not second_reader_done.is_set()
        assert not writer_done.is_set()
        release_first_reader.set()
        assert writer_done.wait(5.0)
        assert second_reader_done.wait(5.0)
        for t in (r1, w, r2):
            t.join(5.0)

    def test_sequential_read_write_cycles(self):
        lock = RWLock()
        for _ in range(3):
            with lock.read():
                pass
            with lock.write():
                pass

    def test_mismatched_releases_raise(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()
