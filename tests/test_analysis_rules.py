"""Per-rule fixtures: each rule has a flagged, a clean, and (for the
file-scope rules) a suppressed case.

Fixture trees reproduce the package layout under ``tmp_path`` (module
names are inferred from the last ``repro`` directory component), so
module-scoped rules match exactly as they do on the real tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.corpus import load_corpus
from repro.analysis.runner import Analyzer, resolve_rules


def lint_tree(tmp_path: Path, files: dict[str, str], select=None):
    """Write ``files`` (relpath -> source) and lint the tree."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    corpus = load_corpus([tmp_path])
    result = Analyzer(resolve_rules(select)).run(corpus)
    return result.findings


def rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

class TestRngDiscipline:
    def test_flags_legacy_and_unseeded_and_stdlib(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                import random
                import numpy as np

                def draw(n):
                    a = np.random.rand(n)
                    rng = np.random.default_rng()
                    b = random.random()
                    return a, rng, b
                """
            },
            select=["rng-discipline"],
        )
        assert len(findings) == 3
        assert {f.line for f in findings} == {5, 6, 7}

    def test_clean_explicit_seeding(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                import numpy as np

                def draw(n, seed):
                    rng = np.random.default_rng(seed)
                    return rng.random(n)
                """
            },
            select=["rng-discipline"],
        )
        assert findings == []

    def test_sanctioned_module_is_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": """\
                import numpy as np

                def ambient_rng():
                    return np.random.default_rng()
                """
            },
            select=["rng-discipline"],
        )
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                import numpy as np

                def draw():
                    return np.random.default_rng()  # repro: allow[rng-discipline] -- demo shim, result unused
                """
            },
            select=["rng-discipline"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# no-column-fancy-gather
# ---------------------------------------------------------------------------

class TestColumnFancyGather:
    def test_flags_column_index_array(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/block.py": """\
                def gather(arr, idx):
                    return arr[:, idx]
                """
            },
            select=["no-column-fancy-gather"],
        )
        assert rules_of(findings) == ["no-column-fancy-gather"]
        assert findings[0].line == 2

    def test_clean_constant_and_slice_and_take(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/block.py": """\
                import numpy as np

                def ok(arr, idx, lo, hi):
                    a = arr[:, 0]
                    b = arr[:, None]
                    c = arr[:, 1:5]
                    d = np.take(arr, idx, axis=1)
                    return a, b, c, d
                """
            },
            select=["no-column-fancy-gather"],
        )
        assert findings == []

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/experiments/tables.py": """\
                def gather(arr, idx):
                    return arr[:, idx]
                """
            },
            select=["no-column-fancy-gather"],
        )
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/block.py": """\
                def gather(arr, idx):
                    return arr[:, idx]  # repro: allow[no-column-fancy-gather] -- cold path, result is reduced columnwise
                """
            },
            select=["no-column-fancy-gather"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# backend-parity
# ---------------------------------------------------------------------------

_REFERENCE_BACKEND = """\
from repro.backends.base import KernelBackend

class NumpyBackend(KernelBackend):
    name = "numpy"

    def global_sweep(self, state, *, count_all_edges=True, workspace=None):
        pass

    def frontier_push(self, state, nodes, *, workspace=None):
        pass
"""


class TestBackendParity:
    def test_clean_when_signatures_match(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/backends/numpy_backend.py": _REFERENCE_BACKEND,
                "repro/backends/numba_backend.py": """\
                from repro.backends.base import KernelBackend

                class NumbaBackend(KernelBackend):
                    name = "numba"

                    def global_sweep(self, state, *, count_all_edges=True, workspace=None):
                        pass

                    def frontier_push(self, state, nodes, *, workspace=None):
                        pass
                """,
            },
            select=["backend-parity"],
        )
        assert findings == []

    def test_flags_missing_and_divergent_and_extra(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/backends/numpy_backend.py": _REFERENCE_BACKEND,
                "repro/backends/numba_backend.py": """\
                from repro.backends.base import KernelBackend

                class NumbaBackend(KernelBackend):
                    name = "numba"

                    def frontier_push(self, state, nodes, workspace=None):
                        pass

                    def bonus_kernel(self, state):
                        pass
                """,
            },
            select=["backend-parity"],
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "missing kernel global_sweep" in messages
        assert "frontier_push() signature diverges" in messages
        assert "bonus_kernel" in messages

    def test_skips_when_compiled_backend_absent(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"repro/backends/numpy_backend.py": _REFERENCE_BACKEND},
            select=["backend-parity"],
        )
        assert findings == []

    def test_flags_public_kernel_without_backend_param(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/kernels.py": """\
                __all__ = ["global_sweep", "helper"]

                def global_sweep(state, *, count_all_edges=True):
                    pass

                def helper(graph, nodes):
                    pass
                """
            },
            select=["backend-parity"],
        )
        assert rules_of(findings) == ["backend-parity"]
        assert "global_sweep" in findings[0].message

    def test_clean_kernel_with_backend_param(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/kernels.py": """\
                __all__ = ["global_sweep"]

                def global_sweep(state, *, count_all_edges=True, backend=None):
                    pass
                """
            },
            select=["backend-parity"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# registry-signature-sync
# ---------------------------------------------------------------------------

_REGISTRY_PRELUDE = """\
_COMMON = ("alpha", "l1_threshold")

def register_solver(spec):
    pass

class SolverSpec:
    def __init__(self, **kw):
        pass

"""


def _registry(body: str) -> str:
    return _REGISTRY_PRELUDE + textwrap.dedent(body)


class TestRegistrySignatureSync:
    def test_clean_when_params_match(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": _registry("""\
                def _solve(graph, source, *, alpha=0.2, l1_threshold=1e-8, beta=1.0):
                    pass

                register_solver(
                    SolverSpec(name="x", params=(*_COMMON, "beta"), fn=_solve)
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        assert findings == []

    def test_flags_undeclared_parameter(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": _registry("""\
                def _solve(graph, source, *, alpha=0.2):
                    pass

                register_solver(
                    SolverSpec(name="x", params=(*_COMMON, "gamma"), fn=_solve)
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 2  # l1_threshold and gamma both missing
        assert "'l1_threshold'" in messages
        assert "'gamma'" in messages

    def test_seed_requires_rng_parameter(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": _registry("""\
                def _stochastic(graph, source, *, alpha=0.2):
                    pass

                register_solver(
                    SolverSpec(name="mc", params=("alpha", "seed"), fn=_stochastic)
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        assert len(findings) == 1
        assert "'rng'" in findings[0].message

    def test_kwargs_solver_accepts_everything(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": _registry("""\
                def _variadic(graph, source, **params):
                    pass

                register_solver(
                    SolverSpec(name="x", params=(*_COMMON, "whatever"), fn=_variadic)
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        assert findings == []

    def test_wrapper_call_contributes_adapter_params(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/api/registry.py": _registry("""\
                def _solve(graph, source, *, alpha=0.2, l1_threshold=1e-8):
                    pass

                def _with_optional_index(solver, builder):
                    def adapter(graph, source, *, use_index=False, walk_index=None, **params):
                        return solver(graph, source, **params)
                    return adapter

                def _builder(graph):
                    pass

                register_solver(
                    SolverSpec(
                        name="x",
                        params=(*_COMMON, "use_index", "walk_index"),
                        fn=_with_optional_index(_solve, _builder),
                    )
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        assert findings == []

    def test_solver_imported_from_corpus_module(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/powerpush.py": """\
                def power_push(graph, source, *, alpha=0.2):
                    pass
                """,
                "repro/api/registry.py": _registry("""\
                from repro.core.powerpush import power_push

                register_solver(
                    SolverSpec(name="x", params=("alpha", "nope"), fn=power_push)
                )
                """),
            },
            select=["registry-signature-sync"],
        )
        assert len(findings) == 1
        assert "'nope'" in findings[0].message


# ---------------------------------------------------------------------------
# version-stamp
# ---------------------------------------------------------------------------

class TestVersionStamp:
    def test_flags_version_blind_cache(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/memo.py": """\
                class ResultCache:
                    def __init__(self):
                        self._entries = {}

                    def get(self, key):
                        return self._entries.get(key)

                    def put(self, key, value):
                        self._entries[key] = value
                """
            },
            select=["version-stamp"],
        )
        assert rules_of(findings) == ["version-stamp"]

    def test_clean_version_stamped_cache(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/memo.py": """\
                class ResultCache:
                    def __init__(self):
                        self._entries = {}

                    def get(self, key, version):
                        entry = self._entries.get(key)
                        if entry is None or entry[0] != version:
                            return None
                        return entry[1]

                    def put(self, key, version, value):
                        self._entries[key] = (version, value)
                """
            },
            select=["version-stamp"],
        )
        assert findings == []

    def test_stats_holder_not_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/memo.py": """\
                class CacheStats:
                    def __init__(self):
                        self.hits = 0
                        self.misses = 0
                """
            },
            select=["version-stamp"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

class TestLockDiscipline:
    def test_flags_blocking_calls_under_writer_lock(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                import time

                class Server:
                    def bad(self, fut):
                        with self._rwlock.write():
                            time.sleep(0.1)
                            fut.result()
                """
            },
            select=["lock-discipline"],
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "sleep" in messages
        assert ".result()" in messages

    def test_flags_engine_solve_under_writer_lock(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                class Server:
                    def bad(self, sources):
                        with self._rwlock.write():
                            return self._engine.batch_query(sources, "powerpush")
                """
            },
            select=["lock-discipline"],
        )
        assert len(findings) == 1
        assert "batch_query" in findings[0].message

    def test_clean_timed_wait_and_read_lock(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                import time

                class Server:
                    def ok(self, fut, sources):
                        with self._rwlock.write():
                            fut.result(timeout=1.0)
                        with self._rwlock.read():
                            self._engine.batch_query(sources, "powerpush")
                        time.sleep(0.1)
                """
            },
            select=["lock-discipline"],
        )
        assert findings == []

    def test_flags_bare_and_swallowed_excepts(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                def deliver(future, exc):
                    try:
                        future.set_exception(exc)
                    except Exception:
                        pass
                    try:
                        future.cancel()
                    except:
                        raise
                """
            },
            select=["lock-discipline"],
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "swallows" in messages
        assert "bare except" in messages

    def test_clean_handled_exception(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                def deliver(future, exc):
                    try:
                        future.set_exception(exc)
                    except Exception as failure:
                        log(failure)
                """
            },
            select=["lock-discipline"],
        )
        assert findings == []

    def test_outside_serving_package_not_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/x.py": """\
                def f():
                    try:
                        pass
                    except Exception:
                        pass
                """
            },
            select=["lock-discipline"],
        )
        assert findings == []

    def test_flags_process_construction_under_writer_lock(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                import os
                from multiprocessing import get_context

                class Dispatcher:
                    def bad(self, target):
                        ctx = get_context("fork")
                        with self._rwlock.write():
                            worker = ctx.Process(target=target)
                            pool = ctx.Pool(4)
                            pid = os.fork()
                        return worker, pool, pid
                """
            },
            select=["lock-discipline"],
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "process/pool construction" in messages

    def test_clean_process_construction_outside_lock(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/srv.py": """\
                from multiprocessing import get_context

                class Dispatcher:
                    def ok(self, target):
                        ctx = get_context("fork")
                        worker = ctx.Process(target=target)
                        with self._rwlock.write():
                            self._workers.append(worker)
                        return worker
                """
            },
            select=["lock-discipline"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# shm-discipline
# ---------------------------------------------------------------------------

class TestShmDiscipline:
    def test_flags_create_with_no_unlink_path(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/leaky.py": """\
                from multiprocessing import shared_memory

                class Image:
                    def export(self, size):
                        self._segment = shared_memory.SharedMemory(
                            name="seg", create=True, size=size
                        )
                        return self._segment

                def scratch(size):
                    return shared_memory.SharedMemory(create=True, size=size)
                """
            },
            select=["shm-discipline"],
        )
        assert len(findings) == 2
        assert all(
            "no reachable unlink()" in f.message for f in findings
        )

    def test_clean_guarded_creation(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/guarded.py": """\
                from multiprocessing import shared_memory

                def export(size):
                    segment = shared_memory.SharedMemory(
                        create=True, size=size
                    )
                    try:
                        fill(segment)
                    except BaseException:
                        segment.close()
                        segment.unlink()
                        raise
                    return segment
                """
            },
            select=["shm-discipline"],
        )
        assert findings == []

    def test_clean_class_teardown_method(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/owned.py": """\
                from multiprocessing import shared_memory

                class Image:
                    def export(self, size):
                        self._segment = shared_memory.SharedMemory(
                            create=True, size=size
                        )

                    def cleanup(self):
                        self._segment.close()
                        self._segment.unlink()
                """
            },
            select=["shm-discipline"],
        )
        assert findings == []

    def test_attach_without_create_is_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/attach.py": """\
                from multiprocessing import shared_memory

                def attach(name):
                    return shared_memory.SharedMemory(name=name)
                """
            },
            select=["shm-discipline"],
        )
        assert findings == []

    def test_suppressed_with_allow_comment(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/transient.py": """\
                from multiprocessing import shared_memory

                def scratch(size):
                    return shared_memory.SharedMemory(  # repro: allow[shm-discipline] -- test scaffolding, unlinked by the fixture
                        create=True, size=size
                    )
                """
            },
            select=["shm-discipline"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# workspace-discipline
# ---------------------------------------------------------------------------

class TestWorkspaceDiscipline:
    def test_flags_raw_allocation_with_workspace_param(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/kernels.py": """\
                import numpy as np

                def frontier_push(state, nodes, *, workspace=None):
                    shares = np.zeros(nodes.shape[0], dtype=np.float64)
                    return shares
                """
            },
            select=["workspace-discipline"],
        )
        assert rules_of(findings) == ["workspace-discipline"]
        assert findings[0].line == 4

    def test_clean_fallback_branch_and_scratch_helper(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/kernels.py": """\
                import numpy as np

                def _scratch(workspace, key, size, dtype):
                    if workspace is not None:
                        return workspace.buffer(key, size, dtype)
                    return np.empty(size, dtype=dtype)

                def frontier_push(state, nodes, *, workspace=None):
                    if workspace is not None:
                        positions = workspace.buffer("p", 4, np.int64)
                    else:
                        positions = np.empty(4, dtype=np.int64)
                    shares = _scratch(workspace, "s", 4, np.float64)
                    return positions, shares
                """
            },
            select=["workspace-discipline"],
        )
        assert findings == []

    def test_function_without_workspace_param_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/kernels.py": """\
                import numpy as np

                def global_sweep(state):
                    out = np.empty(4, dtype=np.float64)
                    return out
                """
            },
            select=["workspace-discipline"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# no-mutable-default
# ---------------------------------------------------------------------------

class TestMutableDefault:
    def test_flags_literal_factory_and_ambient_time(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/opts.py": """\
                import time

                def f(items=[], mapping=dict(), stamp=time.monotonic()):
                    return items, mapping, stamp
                """
            },
            select=["no-mutable-default"],
        )
        assert len(findings) == 3

    def test_clean_none_and_immutable_defaults(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/opts.py": """\
                def f(items=None, key=(1, 2), name="x", *, flag=False):
                    return items, key, name, flag
                """
            },
            select=["no-mutable-default"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# async-discipline
# ---------------------------------------------------------------------------

class TestAsyncDiscipline:
    def test_flags_blocking_sleep_and_untimed_waits(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/door.py": """\
                import time

                async def submit(future, cond):
                    time.sleep(0.1)
                    future.result()
                    cond.wait()
                    return None
                """
            },
            select=["async-discipline"],
        )
        assert rules_of(findings) == ["async-discipline"] * 3
        assert [f.line for f in findings] == [4, 5, 6]

    def test_clean_asyncio_idioms_and_timed_calls(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/door.py": """\
                import asyncio

                async def submit(loop, future, cond):
                    await asyncio.sleep(0.1)
                    await asyncio.wrap_future(future)
                    cond.wait(0.5)
                    future.result(timeout=1.0)
                    return await loop.run_in_executor(None, cond.wait)
                """
            },
            select=["async-discipline"],
        )
        assert findings == []

    def test_nested_sync_def_is_its_own_context(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/door.py": """\
                import time

                async def submit(loop):
                    def blocking_probe():
                        time.sleep(0.1)
                        return 1

                    return await loop.run_in_executor(None, blocking_probe)
                """
            },
            select=["async-discipline"],
        )
        assert findings == []

    def test_sync_def_and_other_packages_out_of_scope(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/door.py": """\
                import time

                def drain(future):
                    time.sleep(0.1)
                    return future.result()
                """,
                "repro/core/pacing.py": """\
                import time

                async def tick():
                    time.sleep(0.1)
                """,
            },
            select=["async-discipline"],
        )
        assert findings == []

    def test_suppression_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/door.py": """\
                import time

                async def submit():
                    time.sleep(0.1)  # repro: allow[async-discipline] -- test fixture pacing
                """
            },
            select=["async-discipline"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# suppression hygiene
# ---------------------------------------------------------------------------

class TestRetryDiscipline:
    def test_flags_unbounded_send_loop_and_blind_retry(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/pump.py": """\
                def pump(queue, item):
                    while True:
                        queue.put(item)

                def retry_request(queue, item):
                    queue.put(item)
                """
            },
            select=["retry-discipline"],
        )
        assert rules_of(findings) == [
            "retry-discipline",
            "retry-discipline",
        ]
        assert "while True" in findings[0].message
        assert "retry_request" in findings[1].message

    def test_clean_bounded_deadline_aware_retry(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/pump.py": """\
                import time

                def pump(queue, items):
                    while True:
                        if not items:
                            return
                        queue.put(items.pop())

                def retry_request(queue, item, attempt, deadline):
                    if attempt >= 3 or time.monotonic() >= deadline:
                        raise TimeoutError(item)
                    queue.put(item)

                def resubmit(queue, item):
                    # Delegates bounding to the retry helper.
                    retry_request(queue, item, 0, item.deadline)
                """
            },
            select=["retry-discipline"],
        )
        assert findings == []

    def test_nested_def_exit_does_not_unflag_the_loop(self, tmp_path):
        # A return inside a nested function cannot terminate the
        # enclosing while True; the loop is still unbounded.
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/pump.py": """\
                def pump(queue, item):
                    while True:
                        def once():
                            return queue.put(item)
                        once()
                """
            },
            select=["retry-discipline"],
        )
        assert rules_of(findings) == ["retry-discipline"]

    def test_outside_serving_package_is_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/pump.py": """\
                def retry_request(queue, item):
                    while True:
                        queue.put(item)
                """
            },
            select=["retry-discipline"],
        )
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/pump.py": """\
                def retry_once(pairs):  # repro: allow[retry-discipline] -- one-shot fallback, no loop
                    for queue, item in pairs:
                        queue.put(item)
                """
            },
            select=["retry-discipline"],
        )
        assert findings == []


class TestDurabilityDiscipline:
    def test_flags_raw_writes_and_json_dump(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/report.py": """\
                import json
                from pathlib import Path

                def persist(path: Path, payload: dict) -> None:
                    path.write_text(json.dumps(payload))
                    path.with_suffix(".bin").write_bytes(b"x")
                    with open(path) as handle:
                        json.dump(payload, handle)
                """
            },
            select=["durability-discipline"],
        )
        assert len(findings) == 3
        assert {f.line for f in findings} == {5, 6, 8}
        assert all(f.rule == "durability-discipline" for f in findings)

    def test_flags_fsyncless_wal_append(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/durability/fastwal.py": """\
                class TurboLog:
                    def append(self, version, updates):
                        self._file.write(b"frame")
                        self._file.flush()
                """
            },
            select=["durability-discipline"],
        )
        assert len(findings) == 1
        assert "os.fsync" in findings[0].message

    def test_clean_atomic_writes_and_fsynced_append(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/report.py": """\
                from repro.durability.atomic import atomic_write_json

                def persist(path, payload):
                    atomic_write_json(path, payload)
                """,
                "repro/durability/fastwal.py": """\
                import os

                class TurboLog:
                    def append(self, version, updates):
                        self._file.write(b"frame")
                        self._file.flush()
                        os.fsync(self._file.fileno())
                """,
            },
            select=["durability-discipline"],
        )
        assert findings == []

    def test_sanctioned_module_and_out_of_scope_are_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                # The implementation of the sanctioned path itself.
                "repro/durability/atomic.py": """\
                def atomic_write_text(path, text):
                    path.write_text(text)
                """,
                # Outside the persistence-bearing packages.
                "repro/experiments/notes.py": """\
                def jot(path, text):
                    path.write_text(text)
                """,
            },
            select=["durability-discipline"],
        )
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/serving/report.py": """\
                def persist(path, text):
                    path.write_text(text)  # repro: allow[durability-discipline] -- throwaway debug dump, never reread
                """
            },
            select=["durability-discipline"],
        )
        assert findings == []


class TestSuppressionHygiene:
    def test_reasonless_allow_is_flagged_and_does_not_suppress(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                import numpy as np

                def draw():
                    return np.random.default_rng()  # repro: allow[rng-discipline]
                """
            },
        )
        assert sorted(rules_of(findings)) == [
            "rng-discipline",
            "suppression-hygiene",
        ]

    def test_unknown_rule_id_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                x = 1  # repro: allow[no-such-rule] -- reason given
                """
            },
        )
        assert rules_of(findings) == ["suppression-hygiene"]
        assert "no-such-rule" in findings[0].message

    def test_file_wide_allow_with_reason(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/sampler.py": """\
                # repro: allow-file[rng-discipline] -- fixture exercising ambient draws
                import numpy as np

                def draw():
                    return np.random.default_rng()
                """
            },
            select=["rng-discipline"],
        )
        assert findings == []


def test_parse_error_is_reported(tmp_path):
    findings = lint_tree(
        tmp_path,
        {"repro/core/broken.py": "def f(:\n    pass\n"},
    )
    assert rules_of(findings) == ["parse-error"]
