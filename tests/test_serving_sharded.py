"""Tests for :class:`repro.serving.sharded.ShardedDispatcher`.

The contract: N worker processes serve one shared-memory graph image
behind consistent-hash routing, and none of that machinery is allowed
to change an answer — every served byte matches the single-process
engine.  Updates broadcast as a versioned barrier; a killed worker is
detected, its pending requests rerouted, and teardown leaves zero
``/dev/shm`` segments behind.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.api import PPREngine
from repro.errors import (
    NodeNotFoundError,
    ParameterError,
    UnknownMethodError,
)
from repro.generators.rmat import rmat_digraph
from repro.graph.dynamic import DynamicGraph
from repro.serving import EngineServer, ShardedDispatcher
from repro.serving.shm import SEGMENT_PREFIX

PARAMS = {"l1_threshold": 1e-6}


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(23)
    return rmat_digraph(8, 1500, rng=rng, name="shard-base")


@pytest.fixture(scope="module")
def dispatcher(base):
    with ShardedDispatcher(base, workers=2, alpha=0.2, seed=7) as disp:
        yield disp


def our_shm_files() -> set[str]:
    from pathlib import Path

    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return set()
    return {
        p.name for p in shm_dir.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
    }


def pick_updates(graph):
    """Two deterministic edge inserts that are legal on ``graph``."""
    updates = []
    for u in (1, 2):
        v = next(
            v
            for v in range(graph.num_nodes)
            if v != u and not graph.has_edge(u, v)
        )
        updates.append(("add", u, v))
    return updates


class TestByteIdentity:
    def test_matches_serial_engine_and_thread_server(self, base, dispatcher):
        rng = np.random.default_rng(5)
        trace = [int(s) for s in rng.integers(0, base.num_nodes, size=24)]
        engine = PPREngine(base, alpha=0.2, seed=7)
        with EngineServer(base, alpha=0.2, seed=7) as thread_server:
            for source in trace:
                sharded = dispatcher.query(source, "powerpush", **PARAMS)
                threaded = thread_server.query(source, "powerpush", **PARAMS)
                serial = engine.query(source, "powerpush", **PARAMS)
                assert (
                    sharded.result.estimate.tobytes()
                    == serial.estimate.tobytes()
                )
                assert (
                    sharded.result.estimate.tobytes()
                    == threaded.result.estimate.tobytes()
                )
                assert sharded.worker == dispatcher.route(source)
                assert threaded.worker is None

    def test_batch_matches_serial(self, base, dispatcher):
        sources = list(range(0, 40, 3))
        engine = PPREngine(base, alpha=0.2, seed=7)
        served = dispatcher.batch(sources, "powerpush", **PARAMS)
        for source, answer in zip(sources, served):
            serial = engine.query(source, "powerpush", **PARAMS)
            assert answer.result.estimate.tobytes() == serial.estimate.tobytes()


class TestRoutingAndStats:
    def test_route_is_stable_and_covers_all_workers(self, dispatcher, base):
        first = [dispatcher.route(s) for s in range(base.num_nodes)]
        second = [dispatcher.route(s) for s in range(base.num_nodes)]
        assert first == second
        assert set(first) == {0, 1}

    def test_repeat_query_hits_same_workers_cache(self, dispatcher):
        source = 9
        first = dispatcher.query(source, "powerpush", **PARAMS)
        second = dispatcher.query(source, "powerpush", **PARAMS)
        assert first.worker == second.worker == dispatcher.route(source)
        assert second.cache_hit
        assert second.result.estimate.tobytes() == first.result.estimate.tobytes()

    def test_stats_aggregate_and_per_worker(self, dispatcher):
        stats = dispatcher.stats()
        assert stats["workers"] == 2
        assert len(stats["per_worker"]) == 2
        assert stats["cache"]["hits"] >= 1  # the repeat query above
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["worker_failures"] == 0

    def test_stats_timeout_is_one_shared_deadline(self, base):
        # Regression: with every shard unresponsive, stats() used to
        # grant each worker the full timeout in sequence, stretching
        # the worst case to workers x timeout.  The probes now share
        # one monotonic deadline, so three stopped workers cost ~one
        # timeout, not three.
        with ShardedDispatcher(base, workers=3, alpha=0.2, seed=7) as disp:
            disp.batch(list(range(9)), "powerpush", **PARAMS)  # all warm
            pids = [state.process.pid for state in disp._states.values()]
            try:
                for pid in pids:
                    os.kill(pid, signal.SIGSTOP)
                began = time.monotonic()
                stats = disp.stats(timeout=0.6)
                elapsed = time.monotonic() - began
            finally:
                for pid in pids:
                    os.kill(pid, signal.SIGCONT)
            # Sequential per-worker budgets would need >= 1.8s here.
            assert elapsed < 1.2, f"stats() took {elapsed:.2f}s"
            # Stopped shards drop out of the aggregate rather than
            # hanging it.
            assert stats["per_worker"] == {}
            # The shards resume cleanly once continued.
            assert disp.query(0, "powerpush", **PARAMS) is not None

    def test_validation_happens_in_the_dispatcher(self, dispatcher, base):
        with pytest.raises(NodeNotFoundError):
            dispatcher.query(base.num_nodes + 5, "powerpush", **PARAMS)
        with pytest.raises(ParameterError, match="scalar parameters"):
            dispatcher.query(0, "powerpush", l1_threshold=[1e-6])
        with pytest.raises(UnknownMethodError):
            dispatcher.query(0, "no-such-method")


class TestUpdates:
    def test_static_dispatcher_rejects_updates(self, dispatcher):
        with pytest.raises(ParameterError, match="dynamic"):
            dispatcher.apply_updates([("add", 0, 1)])

    def test_barrier_returns_agreed_version_and_identical_answers(self, base):
        updates = pick_updates(base)
        with ShardedDispatcher(
            DynamicGraph(base), workers=2, alpha=0.2, seed=7
        ) as disp:
            assert disp.graph_version == 0
            version = disp.apply_updates(updates)
            assert version == len(updates)
            assert disp.graph_version == version

            reference = PPREngine(DynamicGraph(base), alpha=0.2, seed=7)
            reference.apply_updates(updates)
            for source in (0, 1, 2, 7, 19):
                served = disp.query(source, "powerpush", **PARAMS)
                expected = reference.query(source, "powerpush", **PARAMS)
                assert served.version == version
                assert (
                    served.result.estimate.tobytes()
                    == expected.estimate.tobytes()
                )

    def test_barrier_settles_when_a_shard_is_killed_mid_broadcast(
        self, base
    ):
        # Regression (PR 9): a worker dying between receiving the
        # update and acking it used to leave the barrier waiting on a
        # corpse until the update timeout.  The barrier must settle on
        # the survivors' version agreement instead.  SIGSTOP first so
        # the victim is guaranteed to be holding an unacked barrier
        # message when SIGKILL lands.
        updates = pick_updates(base)
        with ShardedDispatcher(
            DynamicGraph(base),
            workers=3,
            alpha=0.2,
            seed=7,
            max_restarts=0,
        ) as disp:
            disp.batch(list(range(6)), "powerpush", **PARAMS)
            victim = disp._states[0].process
            os.kill(victim.pid, signal.SIGSTOP)
            outcome: dict = {}
            done = threading.Event()

            def apply():
                try:
                    outcome["version"] = disp.apply_updates(updates)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    outcome["error"] = exc
                finally:
                    done.set()

            thread = threading.Thread(target=apply, daemon=True)
            thread.start()
            time.sleep(0.3)  # broadcast sent; victim's ack wedged
            assert not done.is_set()
            os.kill(victim.pid, signal.SIGKILL)
            assert done.wait(20), "barrier hung on the dead shard"
            thread.join(timeout=5)
            assert outcome.get("version") == len(updates), outcome
            assert disp.graph_version == len(updates)
            # Survivors keep serving post-update answers.
            reference = PPREngine(DynamicGraph(base), alpha=0.2, seed=7)
            reference.apply_updates(updates)
            served = disp.query(1, "powerpush", **PARAMS)
            assert served.version == len(updates)
            expected = reference.query(1, "powerpush", **PARAMS)
            assert (
                served.result.estimate.tobytes()
                == expected.estimate.tobytes()
            )

    def test_barrier_ordering_under_concurrent_reads(self, base):
        updates = pick_updates(base)
        sources = (1, 2, 7)
        with ShardedDispatcher(
            DynamicGraph(base), workers=2, alpha=0.2, seed=7
        ) as disp:
            answers = []
            stop = threading.Event()

            def reader(source):
                while not stop.is_set():
                    served = disp.query(source, "powerpush", **PARAMS)
                    answers.append((source, served))

            threads = [
                threading.Thread(target=reader, args=(s,), daemon=True)
                for s in sources
            ]
            for t in threads:
                t.start()
            time.sleep(0.10)
            version = disp.apply_updates(updates)
            time.sleep(0.10)
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()

            # Every answer carries either the pre- or post-barrier
            # version — never a torn intermediate — and its bytes match
            # the single-process engine at exactly that version.
            pre = PPREngine(base, alpha=0.2, seed=7)
            post = PPREngine(DynamicGraph(base), alpha=0.2, seed=7)
            post.apply_updates(updates)
            expected = {}
            seen_versions = set()
            for source, served in answers:
                assert served.version in (0, version)
                seen_versions.add(served.version)
                key = (source, served.version)
                if key not in expected:
                    engine = pre if served.version == 0 else post
                    expected[key] = engine.query(
                        source, "powerpush", **PARAMS
                    ).estimate.tobytes()
                assert served.result.estimate.tobytes() == expected[key]
            assert version in seen_versions, "no reader saw the new version"


class TestCrashRecovery:
    def test_killed_worker_reroutes_without_hangs(self, base):
        # max_restarts=0 opts out of supervision: this is the
        # capacity-only-shrinks regression path (a dead worker must be
        # removed and rerouted around, never hung on), kept alongside
        # the respawn tests in test_serving_supervisor.py.
        with ShardedDispatcher(
            base, workers=2, alpha=0.2, seed=7, max_restarts=0
        ) as disp:
            sources = list(range(24))
            disp.batch(sources, "powerpush", **PARAMS)  # all shards warm

            victim = 0
            os.kill(disp._states[victim].process.pid, signal.SIGKILL)

            # Every future must resolve — rerouted to the survivor, not
            # hung on the corpse.
            futures = [
                disp.submit(s, "powerpush", **PARAMS) for s in sources
            ]
            engine = PPREngine(base, alpha=0.2, seed=7)
            for source, future in zip(sources, futures):
                served = future.result(timeout=60)
                assert served.worker == 1
                expected = engine.query(source, "powerpush", **PARAMS)
                assert (
                    served.result.estimate.tobytes()
                    == expected.estimate.tobytes()
                )

            assert disp.num_workers == 1
            stats = disp.stats()
            assert stats["worker_failures"] == 1
            assert len(stats["per_worker"]) == 1
            # Budget 0 means the loss is permanent and reported as
            # degraded capacity, not retried into a crash loop.
            assert stats["supervisor"]["respawns"] == 0
            assert stats["supervisor"]["degraded_capacity"] is True
            assert stats["supervisor"]["removed"] == [0]


class TestTeardown:
    def test_close_idempotent_and_zero_leaked_segments(self, base):
        before = our_shm_files()
        disp = ShardedDispatcher(base, workers=2, alpha=0.2, seed=7)
        disp.query(0, "powerpush", **PARAMS)
        disp.close()
        disp.close()
        assert disp.closed
        assert our_shm_files() == before

    def test_submit_after_close_raises(self, base):
        disp = ShardedDispatcher(base, workers=2, alpha=0.2, seed=7)
        disp.close()
        with pytest.raises(RuntimeError, match="closed"):
            disp.submit(0, "powerpush", **PARAMS)
