"""Legacy setup shim.

The modern PEP 660 editable-install path needs the ``wheel`` package;
this shim lets ``pip install -e . --no-use-pep517`` (or plain
``python setup.py develop``) work in offline environments where
``wheel`` is unavailable.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
